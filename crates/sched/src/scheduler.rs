//! The scheduler core: bounded admission, policy-ordered dispatch, per-job
//! epoch namespaces, and frame-pool-aware backpressure.
//!
//! One worker thread per backend lane pulls jobs from the shared pending
//! queue under the policy's ordering and runs them to completion; clients
//! get a [`JobHandle`] at admission and wait on it for the typed result.
//! The normative admission state machine and backpressure law live in
//! DESIGN.md §5i; this module is their implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sparker_net::pool;
use sparker_net::sync::{channel, Mutex, Receiver, RecvTimeoutError, Sender};
use sparker_obs::metrics::{self, Counter, Gauge, Histogram};
use sparker_obs::{trace, Layer};

use crate::backend::{Backend, JobCtx};
use crate::error::SchedError;
use crate::policy::{ClientId, JobMeta, Policy, Priority};

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Bounded admission queue: pending (not yet dispatched) jobs beyond
    /// this are rejected with [`SchedError::QueueFull`].
    pub capacity: usize,
    /// Admission backpressure: a [`Priority::Low`] submission is shed with
    /// [`SchedError::PoolSaturated`] while global frame-pool pressure
    /// ([`pool::FramePool::pressure_permille`]) is at or above this. The
    /// default (2000 = 2x one class's retention cap checked out) is above
    /// anything a healthy single job produces.
    pub shed_pressure_permille: u64,
    /// Dispatch backpressure: while pressure is at or above this, pending
    /// [`Priority::Low`] jobs are delayed (re-checked every few ms, never
    /// abandoned) whenever higher-priority work is waiting.
    pub delay_pressure_permille: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self { capacity: 64, shed_pressure_permille: 2000, delay_pressure_permille: 1200 }
    }
}

/// One admission request.
#[derive(Debug, Clone)]
pub struct JobRequest<J> {
    pub client: ClientId,
    pub priority: Priority,
    /// Relative cost for fair-share deficit accounting (1 = uniform).
    pub cost: u64,
    pub job: J,
}

impl<J> JobRequest<J> {
    /// A [`Priority::Normal`], cost-1 request.
    pub fn new(client: ClientId, job: J) -> Self {
        Self { client, priority: Priority::Normal, cost: 1, job }
    }
}

/// The submitter's end of an admitted job.
pub struct JobHandle<O> {
    /// Scheduler-assigned job id (monotonic from 1).
    pub job_id: u64,
    /// The epoch namespace the job runs under (unique among live jobs).
    pub epoch_ns: u32,
    rx: Receiver<Result<O, SchedError>>,
}

impl<O> std::fmt::Debug for JobHandle<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("job_id", &self.job_id)
            .field("epoch_ns", &self.epoch_ns)
            .finish_non_exhaustive()
    }
}

impl<O> JobHandle<O> {
    /// Blocks until the job completes (or the scheduler shuts down).
    pub fn wait(self) -> Result<O, SchedError> {
        self.rx.recv().map_err(|_| SchedError::Shutdown)?
    }

    /// Bounded wait; `None` means still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<O, SchedError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(SchedError::Shutdown)),
        }
    }
}

struct PendingJob<J, O> {
    meta: JobMeta,
    /// The job's live epoch namespace (released on completion).
    epoch_ns: u32,
    job: J,
    enqueued: Instant,
    tx: Sender<Result<O, SchedError>>,
}

struct State<B: Backend> {
    pending: Vec<PendingJob<B::Job, B::Output>>,
    policy: Box<dyn Policy>,
    /// Namespaces of live (admitted, not yet completed) jobs.
    live_ns: std::collections::HashSet<u32>,
    ns_cursor: u32,
    inflight: usize,
    shutdown: bool,
}

struct Shared<B: Backend> {
    backend: B,
    state: Mutex<State<B>>,
    cv: Condvar,
    cfg: SchedConfig,
    job_counter: AtomicU64,
    seq_counter: AtomicU64,
}

/// A running scheduler over backend `B`. Dropping it shuts down: pending
/// jobs fail with [`SchedError::Shutdown`], in-flight jobs finish, workers
/// join.
pub struct Scheduler<B: Backend> {
    shared: Arc<Shared<B>>,
    workers: Vec<JoinHandle<()>>,
}

impl<B: Backend> Scheduler<B> {
    /// Spawns one worker per backend lane.
    ///
    /// Panics if `capacity + lanes + 1 >= NS_COUNT` — live jobs (pending +
    /// in-flight) must always fit in the namespace space with room to
    /// allocate, so admission can never fail on namespaces.
    pub fn new(backend: B, policy: Box<dyn Policy>, cfg: SchedConfig) -> Self {
        let lanes = backend.lanes();
        assert!(lanes >= 1, "backend must expose at least one lane");
        assert!(
            cfg.capacity + lanes + 1 < sparker_net::epoch::NS_COUNT as usize,
            "capacity {} + lanes {lanes} must leave free epoch namespaces (< {})",
            cfg.capacity,
            sparker_net::epoch::NS_COUNT
        );
        let shared = Arc::new(Shared {
            backend,
            state: Mutex::new(State {
                pending: Vec::new(),
                policy,
                live_ns: Default::default(),
                ns_cursor: 1,
                inflight: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            cfg,
            job_counter: AtomicU64::new(0),
            seq_counter: AtomicU64::new(0),
        });
        let workers = (0..lanes)
            .map(|lane| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sched-worker-{lane}"))
                    .spawn(move || worker(shared, lane))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Admits a job or rejects it typed; never blocks on execution.
    ///
    /// Admission order (DESIGN.md §5i): shutdown check → queue bound
    /// ([`SchedError::QueueFull`]) → backpressure shed
    /// ([`SchedError::PoolSaturated`], low priority only) → namespace
    /// allocation (infallible by construction) → enqueue.
    pub fn submit(&self, req: JobRequest<B::Job>) -> Result<JobHandle<B::Output>, SchedError> {
        let pressure = pool::global().pressure_permille();
        let mut st = self.shared.state.lock();
        if st.shutdown {
            return Err(SchedError::Shutdown);
        }
        if st.pending.len() >= self.shared.cfg.capacity {
            obs().rejected_full.add(1);
            return Err(SchedError::QueueFull { capacity: self.shared.cfg.capacity });
        }
        if req.priority == Priority::Low && pressure >= self.shared.cfg.shed_pressure_permille {
            obs().rejected_pool.add(1);
            return Err(SchedError::PoolSaturated {
                pressure_permille: pressure,
                limit_permille: self.shared.cfg.shed_pressure_permille,
            });
        }
        let job_id = self.shared.job_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let seq = self.shared.seq_counter.fetch_add(1, Ordering::Relaxed);
        let epoch_ns = alloc_ns(&mut st);
        let (tx, rx) = channel();
        st.pending.push(PendingJob {
            meta: JobMeta { seq, job_id, client: req.client, priority: req.priority, cost: req.cost.max(1) },
            epoch_ns,
            job: req.job,
            enqueued: Instant::now(),
            tx,
        });
        obs().admitted.add(1);
        obs().queue_depth.set(st.pending.len() as i64);
        drop(st);
        self.shared.cv.notify_one();
        Ok(JobHandle { job_id, epoch_ns, rx })
    }

    /// Pending (admitted, not yet dispatched) jobs.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().pending.len()
    }

    /// Jobs currently executing on lanes.
    pub fn inflight(&self) -> usize {
        self.shared.state.lock().inflight
    }

    /// Epoch namespaces of live jobs, ascending — the property suite
    /// asserts these never collide and never contain the default 0.
    pub fn active_namespaces(&self) -> Vec<u32> {
        let mut ns: Vec<u32> = self.shared.state.lock().live_ns.iter().copied().collect();
        ns.sort_unstable();
        ns
    }

    /// The policy's name (for bench labels).
    pub fn policy_name(&self) -> &'static str {
        self.shared.state.lock().policy.name()
    }

    /// Stops admission, fails every pending job with
    /// [`SchedError::Shutdown`], and wakes the workers (they finish their
    /// in-flight job and exit). Idempotent; `Drop` calls it too.
    pub fn shutdown(&self) {
        let mut st = self.shared.state.lock();
        st.shutdown = true;
        for p in st.pending.drain(..) {
            let _ = p.tx.send(Err(SchedError::Shutdown));
        }
        // Pending namespaces stay in live_ns until process end; harmless
        // (shutdown is terminal for this scheduler).
        obs().queue_depth.set(0);
        drop(st);
        self.shared.cv.notify_all();
    }
}

impl<B: Backend> Drop for Scheduler<B> {
    fn drop(&mut self) {
        self.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Allocates a free namespace in `1..NS_COUNT`, rotating a cursor so
/// recently-freed namespaces are not immediately reused (stale frames from a
/// finished job age out of the mesh before its namespace comes around
/// again). Infallible: `Scheduler::new` caps live jobs below `NS_COUNT - 1`.
fn alloc_ns<B: Backend>(st: &mut State<B>) -> u32 {
    let span = sparker_net::epoch::NS_COUNT - 1; // namespaces 1..NS_COUNT
    for _ in 0..span {
        let ns = st.ns_cursor;
        st.ns_cursor = if st.ns_cursor >= sparker_net::epoch::NS_COUNT - 1 { 1 } else { st.ns_cursor + 1 };
        if st.live_ns.insert(ns) {
            return ns;
        }
    }
    unreachable!("live jobs are bounded below the namespace count")
}

fn worker<B: Backend>(shared: Arc<Shared<B>>, lane: usize) {
    loop {
        // --- pick one job under the lock ---------------------------------
        let picked = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if !st.pending.is_empty() {
                    let pressure = pool::global().pressure_permille();
                    let delay_low = pressure >= shared.cfg.delay_pressure_permille;
                    let any_non_low =
                        st.pending.iter().any(|p| p.meta.priority > Priority::Low);
                    if delay_low && !any_non_low {
                        // Only low-priority work while the pool is hot:
                        // delay (bounded tick, then re-check pressure) —
                        // delayed, never abandoned.
                        let (g, _) = shared
                            .cv
                            .wait_timeout(st, Duration::from_millis(2))
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        st = g;
                        continue;
                    }
                    // Eligible view: everything, or non-Low under pressure.
                    let eligible: Vec<usize> = if delay_low {
                        (0..st.pending.len())
                            .filter(|&i| st.pending[i].meta.priority > Priority::Low)
                            .collect()
                    } else {
                        (0..st.pending.len()).collect()
                    };
                    let metas: Vec<JobMeta> =
                        eligible.iter().map(|&i| st.pending[i].meta).collect();
                    let choice = st.policy.select(&metas);
                    debug_assert!(choice < metas.len(), "policy index in range");
                    let idx = eligible[choice.min(metas.len() - 1)];
                    let p = st.pending.remove(idx);
                    st.inflight += 1;
                    obs().queue_depth.set(st.pending.len() as i64);
                    obs().inflight.set(st.inflight as i64);
                    break p;
                }
                let (g, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
            }
        };
        let p = picked;

        // --- run it outside the lock -------------------------------------
        obs().queue_wait_us.observe(p.enqueued.elapsed().as_micros() as u64);
        let mut span = trace::span(Layer::Driver, "sched.job");
        span.arg("job", p.meta.job_id)
            .arg("client", p.meta.client as u64)
            .arg("ns", p.epoch_ns as u64);
        let started = Instant::now();
        let out = shared
            .backend
            .run(lane, JobCtx { job_id: p.meta.job_id, epoch_ns: p.epoch_ns }, &p.job);
        obs().service_us.observe(started.elapsed().as_micros() as u64);
        obs().latency_us.observe(p.enqueued.elapsed().as_micros() as u64);
        drop(span);

        // --- release the namespace, report -------------------------------
        {
            let mut st = shared.state.lock();
            st.live_ns.remove(&p.epoch_ns);
            st.inflight -= 1;
            obs().inflight.set(st.inflight as i64);
        }
        match out {
            Ok(v) => {
                obs().completed.add(1);
                let _ = p.tx.send(Ok(v));
            }
            Err(reason) => {
                obs().failed.add(1);
                let _ = p.tx.send(Err(SchedError::TaskFailed { job: p.meta.job_id, reason }));
            }
        }
    }
}

/// Cached `sched.*` metric handles (one registry lookup per process).
struct Obs {
    admitted: Arc<Counter>,
    rejected_full: Arc<Counter>,
    rejected_pool: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    inflight: Arc<Gauge>,
    queue_wait_us: Arc<Histogram>,
    service_us: Arc<Histogram>,
    latency_us: Arc<Histogram>,
}

fn obs() -> &'static Obs {
    static OBS: OnceLock<Obs> = OnceLock::new();
    OBS.get_or_init(|| Obs {
        admitted: metrics::counter("sched.admitted"),
        rejected_full: metrics::counter("sched.rejected.queue_full"),
        rejected_pool: metrics::counter("sched.rejected.backpressure"),
        completed: metrics::counter("sched.completed"),
        failed: metrics::counter("sched.failed"),
        queue_depth: metrics::gauge("sched.queue_depth"),
        inflight: metrics::gauge("sched.inflight"),
        queue_wait_us: metrics::histogram("sched.queue_wait_us"),
        service_us: metrics::histogram("sched.service_us"),
        latency_us: metrics::histogram("sched.latency_us"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fifo;

    /// Doubles the input; errors on odd jobs when `fail_odd` is set.
    struct TestBackend {
        lanes: usize,
        fail_odd: bool,
    }

    impl Backend for TestBackend {
        type Job = u64;
        type Output = u64;

        fn lanes(&self) -> usize {
            self.lanes
        }

        fn run(&self, _lane: usize, _ctx: JobCtx, job: &u64) -> Result<u64, String> {
            if self.fail_odd && job % 2 == 1 {
                Err(format!("odd job {job}"))
            } else {
                Ok(job * 2)
            }
        }
    }

    /// Holds every dispatched job until the gate opens, so tests can pin
    /// jobs in the in-flight/pending states deterministically.
    struct GateBackend {
        gate: std::sync::Mutex<bool>,
        cv: Condvar,
    }

    impl GateBackend {
        fn new() -> Arc<Self> {
            Arc::new(Self { gate: std::sync::Mutex::new(false), cv: Condvar::new() })
        }

        fn open(&self) {
            *self.gate.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    impl Backend for Arc<GateBackend> {
        type Job = u64;
        type Output = u64;

        fn lanes(&self) -> usize {
            1
        }

        fn run(&self, _lane: usize, _ctx: JobCtx, job: &u64) -> Result<u64, String> {
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
            Ok(*job)
        }
    }

    fn wait_until<F: Fn() -> bool>(what: &str, f: F) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !f() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn jobs_complete_with_results() {
        let sched = Scheduler::new(
            TestBackend { lanes: 2, fail_odd: false },
            Box::new(Fifo),
            SchedConfig::default(),
        );
        let handles: Vec<_> = (0..16)
            .map(|j| sched.submit(JobRequest::new(0, j)).expect("admitted"))
            .collect();
        for (j, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait().expect("job runs"), j as u64 * 2);
        }
    }

    #[test]
    fn backend_error_becomes_typed_task_failed() {
        let sched = Scheduler::new(
            TestBackend { lanes: 1, fail_odd: true },
            Box::new(Fifo),
            SchedConfig::default(),
        );
        let h = sched.submit(JobRequest::new(0, 7)).expect("admitted");
        let job_id = h.job_id;
        match h.wait() {
            Err(SchedError::TaskFailed { job, reason }) => {
                assert_eq!(job, job_id);
                assert!(reason.contains("odd job 7"), "{reason}");
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
        let ok = sched.submit(JobRequest::new(0, 8)).expect("admitted");
        assert_eq!(ok.wait().expect("even job runs"), 16);
    }

    #[test]
    fn queue_full_rejects_typed_and_recovers() {
        let gate = GateBackend::new();
        let cfg = SchedConfig { capacity: 2, ..SchedConfig::default() };
        let sched = Scheduler::new(gate.clone(), Box::new(Fifo), cfg);
        // First job dispatches (blocks on the gate); two more fill the queue.
        let h0 = sched.submit(JobRequest::new(0, 10)).expect("dispatched");
        wait_until("first job in flight", || sched.inflight() == 1);
        let h1 = sched.submit(JobRequest::new(0, 11)).expect("queued");
        let h2 = sched.submit(JobRequest::new(0, 12)).expect("queued");
        match sched.submit(JobRequest::new(0, 13)) {
            Err(SchedError::QueueFull { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        gate.open();
        // Rejection is not sticky: the queue drains and admits again.
        assert_eq!(h0.wait().expect("runs"), 10);
        assert_eq!(h1.wait().expect("runs"), 11);
        assert_eq!(h2.wait().expect("runs"), 12);
        let h3 = sched.submit(JobRequest::new(0, 13)).expect("space again");
        assert_eq!(h3.wait().expect("runs"), 13);
    }

    #[test]
    fn live_jobs_hold_distinct_nonzero_namespaces() {
        let gate = GateBackend::new();
        let cfg = SchedConfig { capacity: 8, ..SchedConfig::default() };
        let sched = Scheduler::new(gate.clone(), Box::new(Fifo), cfg);
        let handles: Vec<_> = (0..6)
            .map(|j| sched.submit(JobRequest::new(j as u32, j)).expect("admitted"))
            .collect();
        let ns = sched.active_namespaces();
        assert_eq!(ns.len(), 6, "every live job holds a namespace");
        for w in ns.windows(2) {
            assert_ne!(w[0], w[1], "namespaces are distinct");
        }
        for (h, n) in handles.iter().zip(&ns) {
            assert!(h.epoch_ns >= 1 && h.epoch_ns < sparker_net::epoch::NS_COUNT);
            assert!(*n >= 1 && *n < sparker_net::epoch::NS_COUNT);
            let _ = h;
        }
        gate.open();
        for h in handles {
            h.wait().expect("runs");
        }
        wait_until("namespaces released", || sched.active_namespaces().is_empty());
    }

    #[test]
    fn shutdown_fails_pending_jobs_typed() {
        let gate = GateBackend::new();
        let sched = Scheduler::new(gate.clone(), Box::new(Fifo), SchedConfig::default());
        let h0 = sched.submit(JobRequest::new(0, 1)).expect("dispatched");
        wait_until("first job in flight", || sched.inflight() == 1);
        let h1 = sched.submit(JobRequest::new(0, 2)).expect("queued");
        sched.shutdown();
        assert_eq!(h1.wait(), Err(SchedError::Shutdown), "pending job fails typed");
        match sched.submit(JobRequest::new(0, 3)) {
            Err(SchedError::Shutdown) => {}
            Ok(_) => panic!("admission after shutdown must fail"),
            Err(other) => panic!("expected Shutdown, got {other}"),
        }
        gate.open();
        assert_eq!(h0.wait().expect("in-flight job still finishes"), 1);
    }
}
