//! Execution backends: where admitted jobs actually run.
//!
//! The scheduler core is generic over a [`Backend`] with one or more
//! *lanes* — independent execution slots the worker threads drive. The two
//! production shapes:
//!
//! * [`EngineBackend`] — each lane owns its own in-process
//!   [`LocalCluster`]; lanes run genuinely concurrently (a cluster's action
//!   lock serializes ops *per cluster*, so one cluster per lane is what
//!   turns job concurrency into wall-clock overlap).
//! * [`MultiProcBackend`] — one lane over the shared
//!   [`MultiProcDriver`] control plane; concurrency here is *interleaving*
//!   many submitters' jobs through the policy queue, with each job fenced
//!   into its own epoch namespace on the real TCP mesh.

use std::sync::Arc;

use sparker_engine::config::ClusterSpec;
use sparker_engine::multiproc::{
    part_vector, JobOutcome, JobSpec, MultiProcDriver, ALGO_HIER, ALGO_RING,
};
use sparker_engine::ops::split_aggregate::{split_aggregate, SelectorOpts, SplitAggOpts};
use sparker_engine::rdd::RddRef;
use sparker_engine::rdds::ParallelCollection;
use sparker_engine::LocalCluster;
use sparker_net::codec::F64Array;
use sparker_net::sync::Mutex;

/// Context the scheduler hands a backend for each dispatch: the identity the
/// job runs under.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// Scheduler-assigned job id (monotonic from 1).
    pub job_id: u64,
    /// The job's live epoch namespace in `1..NS_COUNT`, unique among live
    /// jobs — backends must fence every collective frame with it.
    pub epoch_ns: u32,
}

/// Where jobs run. `run` is called from scheduler worker threads, one call
/// per lane at a time (the scheduler never dispatches two jobs onto the
/// same lane concurrently).
pub trait Backend: Send + Sync + 'static {
    type Job: Send + 'static;
    type Output: Send + 'static;

    /// Number of independent execution slots.
    fn lanes(&self) -> usize;

    /// Runs one job to completion on `lane`. A `Err(reason)` becomes a
    /// typed [`crate::SchedError::TaskFailed`] for the submitter.
    fn run(&self, lane: usize, ctx: JobCtx, job: &Self::Job) -> Result<Self::Output, String>;
}

/// One small dense split-aggregate job for the in-process backend: sums
/// [`part_vector`]`(seed, p, dim, 1.0)` over `parts` partitions. Values are
/// integer-valued `f64`s, so the result is bit-exact in any merge order and
/// [`EngineBackend::oracle`] is an exact-equality oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggJob {
    pub seed: u64,
    pub dim: usize,
    pub parts: usize,
}

/// In-process backend: `lanes` independent [`LocalCluster`]s.
pub struct EngineBackend {
    lanes: Vec<LocalCluster>,
    /// Algorithm selection policy stamped onto every job (`None` = the
    /// engine's legacy flat-ring default).
    selector: Option<SelectorOpts>,
}

impl EngineBackend {
    /// `lanes` clusters of `executors`×`cores` each.
    pub fn new(lanes: usize, executors: usize, cores: usize) -> Self {
        Self::with_spec(lanes, ClusterSpec::local(executors, cores))
    }

    /// `lanes` clusters of an arbitrary shape (multi-node specs give the
    /// selector a real topology to pick hierarchical collectives over).
    pub fn with_spec(lanes: usize, spec: ClusterSpec) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        Self {
            lanes: (0..lanes).map(|_| LocalCluster::new(spec.clone())).collect(),
            selector: None,
        }
    }

    /// Runs every job under this selection policy (e.g.
    /// `SelectorOpts::Auto(model)` for calibrated auto-tuning).
    pub fn with_selector(mut self, selector: SelectorOpts) -> Self {
        self.selector = Some(selector);
        self
    }

    /// The serial oracle: what [`Backend::run`] must produce, bit-for-bit.
    pub fn oracle(job: &AggJob) -> Vec<f64> {
        let mut acc = vec![0.0f64; job.dim];
        for p in 0..job.parts as u64 {
            for (a, x) in acc.iter_mut().zip(part_vector(job.seed, p, job.dim, 1.0)) {
                *a += x;
            }
        }
        acc
    }
}

impl Backend for EngineBackend {
    type Job = AggJob;
    type Output = Vec<f64>;

    fn lanes(&self) -> usize {
        self.lanes.len()
    }

    fn run(&self, lane: usize, ctx: JobCtx, job: &Self::Job) -> Result<Vec<f64>, String> {
        let cluster = &self.lanes[lane];
        let rdd: RddRef<u64> =
            Arc::new(ParallelCollection::new((0..job.parts as u64).collect(), job.parts));
        let seed = job.seed;
        let dim = job.dim;
        let opts = SplitAggOpts {
            job_id: ctx.job_id,
            epoch_ns: ctx.epoch_ns,
            selector: self.selector,
            hint_bytes: (job.dim * 8) as u64,
            ..Default::default()
        };
        let (value, _metrics) = split_aggregate(
            cluster,
            rdd,
            vec![0.0f64; dim],
            move |mut acc: Vec<f64>, p: &u64| {
                for (a, x) in acc.iter_mut().zip(part_vector(seed, *p, dim, 1.0)) {
                    *a += x;
                }
                acc
            },
            |a: &mut Vec<f64>, b: Vec<f64>| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            },
            |u: &Vec<f64>, i: usize, n: usize| {
                let (lo, hi) = sparker_collectives::segment::slice_bounds(u.len(), i, n);
                F64Array(u[lo..hi].to_vec())
            },
            |a: &mut F64Array, b: F64Array| {
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            |segs: Vec<F64Array>| F64Array(segs.into_iter().flat_map(|s| s.0).collect()),
            opts,
        )
        .map_err(|e| e.to_string())?;
        Ok(value.0)
    }
}

/// Real-TCP backend over a shared [`MultiProcDriver`]. One lane: the control
/// plane is sequential, but jobs from many submitters interleave through the
/// policy queue and each runs under its own epoch namespace on the wire.
pub struct MultiProcBackend {
    driver: Arc<Mutex<MultiProcDriver>>,
    tuning: Option<MultiProcTuning>,
}

/// Auto-tuning config for [`MultiProcBackend`]: the calibrated cost model
/// plus the emulated node count stamped into every spec (the TCP mesh has no
/// physical topology, so the node grouping is part of the experiment setup).
#[derive(Debug, Clone, Copy)]
pub struct MultiProcTuning {
    pub model: sparker_tuner::CostModel,
    /// Emulated nodes ([`JobSpec::nodes`]); 0 = every rank its own node.
    pub nodes: usize,
}

impl MultiProcBackend {
    /// Wraps a shared driver; the caller keeps its own `Arc` for shutdown
    /// and metrics collection after the scheduler is done.
    pub fn new(driver: Arc<Mutex<MultiProcDriver>>) -> Self {
        Self { driver, tuning: None }
    }

    /// Picks `algo`/`chunks` per job from the calibrated model instead of
    /// honoring the spec's own values.
    pub fn with_tuning(mut self, tuning: MultiProcTuning) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Rewrites `spec`'s algorithm fields from a fresh selection over the
    /// current live-executor count. Exposed for tests and benches.
    pub fn tune_spec(tuning: &MultiProcTuning, executors: usize, spec: &mut JobSpec) {
        use sparker_tuner::{Algo, JobShape, Selector};
        let density_permille = if spec.sparse {
            ((spec.density * 1000.0).round() as u32).clamp(1, 1000)
        } else {
            1000
        };
        let shape = JobShape {
            bytes: (spec.dim * 8) as u64,
            density_permille,
            executors: executors.max(1),
            nodes: if tuning.nodes == 0 { executors.max(1) } else { tuning.nodes.min(executors.max(1)) },
            parallelism: spec.parallelism,
        };
        let decision = Selector::new(tuning.model).select(&shape);
        spec.nodes = tuning.nodes;
        match decision.algo {
            Algo::ChunkedRing(c) => {
                spec.algo = ALGO_RING;
                spec.chunks = c as usize;
            }
            Algo::Hierarchical => {
                spec.algo = ALGO_HIER;
                spec.chunks = 1;
            }
            // The TCP mesh runs the ring family only; halving and tree map
            // to the flat ring (the closest supported path).
            Algo::FlatRing | Algo::Halving | Algo::Tree => {
                spec.algo = ALGO_RING;
                spec.chunks = 1;
            }
        }
    }
}

impl Backend for MultiProcBackend {
    type Job = JobSpec;
    type Output = JobOutcome;

    fn lanes(&self) -> usize {
        1
    }

    fn run(&self, _lane: usize, ctx: JobCtx, job: &Self::Job) -> Result<JobOutcome, String> {
        let mut spec = job.clone();
        // The scheduler's identity wins: its job ids are unique across the
        // queue and its namespace is unique among live jobs.
        spec.id = ctx.job_id;
        spec.epoch_ns = ctx.epoch_ns;
        let mut driver = self.driver.lock();
        if let Some(tuning) = &self.tuning {
            Self::tune_spec(tuning, driver.alive().len(), &mut spec);
        }
        driver.run_job(&spec).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_backend_matches_oracle_bit_exact() {
        let backend = EngineBackend::new(2, 2, 1);
        let job = AggJob { seed: 0xBEEF, dim: 33, parts: 3 };
        let want = EngineBackend::oracle(&job);
        for lane in 0..2 {
            let got = backend
                .run(lane, JobCtx { job_id: 7, epoch_ns: 5 }, &job)
                .expect("job runs");
            assert_eq!(
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "lane {lane} bit-exact vs serial oracle"
            );
        }
    }

    #[test]
    fn engine_backend_with_auto_selector_stays_bit_exact() {
        use sparker_tuner::CostModel;
        let mut spec = ClusterSpec::local(4, 1);
        spec.nodes = 2;
        spec.executors_per_node = 2;
        let backend = EngineBackend::with_spec(1, spec)
            .with_selector(SelectorOpts::Auto(CostModel::default_model()));
        let job = AggJob { seed: 0xCAFE, dim: 65, parts: 5 };
        let want = EngineBackend::oracle(&job);
        let got = backend.run(0, JobCtx { job_id: 3, epoch_ns: 2 }, &job).expect("job runs");
        assert_eq!(
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "auto-tuned run bit-exact vs serial oracle"
        );
    }

    #[test]
    fn tune_spec_picks_hierarchical_for_big_dense_multi_node() {
        use sparker_tuner::CostModel;
        let tuning = MultiProcTuning { model: CostModel::default_model(), nodes: 2 };
        let mut spec = JobSpec::dense(1, 7, 512 * 1024, 8); // 4 MiB aggregator
        MultiProcBackend::tune_spec(&tuning, 8, &mut spec);
        assert_eq!(spec.algo, ALGO_HIER, "4 MiB dense over 2 nodes -> hierarchical");
        assert_eq!(spec.nodes, 2);
        let mut tiny = JobSpec::dense(2, 7, 16, 8); // 128 B aggregator
        MultiProcBackend::tune_spec(&tuning, 8, &mut tiny);
        assert_eq!(tiny.chunks, 1, "tiny jobs cannot pay per-chunk alphas");
    }

    #[test]
    fn engine_backend_rejects_bad_namespace_typed() {
        let backend = EngineBackend::new(1, 2, 1);
        let job = AggJob { seed: 1, dim: 8, parts: 2 };
        let err = backend
            .run(0, JobCtx { job_id: 1, epoch_ns: sparker_net::epoch::NS_COUNT }, &job)
            .unwrap_err();
        assert!(err.contains("namespace"), "{err}");
    }
}
