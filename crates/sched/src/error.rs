//! Typed scheduler errors.
//!
//! Every way a job can fail to produce a result is a variant here — the
//! acceptance discipline is "typed error or exact answer, never a hang,
//! never a wrong answer", same as the engine's.

use std::fmt;

/// Why a job was rejected or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The bounded admission queue is full; retry later or shed load
    /// upstream. `capacity` is the configured bound that was hit.
    QueueFull { capacity: usize },
    /// Admission shed this low-priority job because the shared frame pool
    /// is the contended resource right now (DESIGN.md §5i backpressure
    /// law): measured pool pressure `pressure_permille` was at or above the
    /// configured `limit_permille`.
    PoolSaturated { pressure_permille: u64, limit_permille: u64 },
    /// The job was admitted and dispatched but the backend could not
    /// produce an exact result (e.g. a view change with the fallback
    /// disabled). Carries the backend's own typed error, stringified.
    TaskFailed { job: u64, reason: String },
    /// The scheduler shut down before (or while) the job ran.
    Shutdown,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            SchedError::PoolSaturated { pressure_permille, limit_permille } => write!(
                f,
                "frame pool saturated: pressure {pressure_permille}permille >= limit {limit_permille}permille"
            ),
            SchedError::TaskFailed { job, reason } => write!(f, "job {job} failed: {reason}"),
            SchedError::Shutdown => write!(f, "scheduler shut down"),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        assert!(SchedError::QueueFull { capacity: 8 }.to_string().contains("capacity 8"));
        assert!(SchedError::PoolSaturated { pressure_permille: 2500, limit_permille: 2000 }
            .to_string()
            .contains("2500"));
        assert!(SchedError::TaskFailed { job: 3, reason: "x".into() }
            .to_string()
            .contains("job 3"));
        assert!(SchedError::Shutdown.to_string().contains("shut down"));
    }
}
