//! # sparker-sched
//!
//! The job-scheduling subsystem between clients and the engine — the
//! "millions of users" layer: where the engine runs *one* aggregation at a
//! time, this crate admits, orders, and dispatches *many* concurrent
//! `split_aggregate` jobs from many clients.
//!
//! The normative spec is DESIGN.md §5i. The shape:
//!
//! * **Bounded admission** — [`Scheduler::submit`] either admits a job or
//!   rejects it *typed* ([`SchedError::QueueFull`],
//!   [`SchedError::PoolSaturated`]); it never blocks the client and never
//!   drops silently.
//! * **Policies** ([`policy`]) — FIFO, strict priority, and fair-share
//!   (deficit round-robin per client) behind one [`policy::Policy`] trait.
//!   The policy only picks *which pending job dispatches next*; admission
//!   and completion are policy-independent.
//! * **Epoch namespaces** — every live job holds a distinct namespace in
//!   `1..NS_COUNT` ([`sparker_net::epoch::namespaced`]), folded into the
//!   attempt word of its collective frames, so concurrent rings can never
//!   accept each other's traffic. Namespaces are recycled only after the
//!   job completes.
//! * **Frame-pool backpressure** — admission and dispatch consult the
//!   global [`sparker_net::pool::FramePool`] occupancy
//!   ([`FramePool::pressure_permille`](sparker_net::pool::FramePool::pressure_permille)):
//!   low-priority jobs are shed at admission above
//!   [`SchedConfig::shed_pressure_permille`] and delayed at dispatch above
//!   [`SchedConfig::delay_pressure_permille`] while higher-priority work is
//!   waiting.
//! * **Backends** ([`backend`]) — the scheduler core is generic over where
//!   jobs run: per-lane in-process clusters ([`backend::EngineBackend`]) or
//!   the real-TCP multi-process driver ([`backend::MultiProcBackend`]).
//!
//! Everything is instrumented as `sched.*` counters/gauges/histograms in
//! [`sparker_obs`], plus a gated `sched.job` span per dispatch.

pub mod backend;
pub mod error;
pub mod policy;
pub mod scheduler;

pub use backend::{AggJob, Backend, EngineBackend, JobCtx, MultiProcBackend, MultiProcTuning};
pub use error::SchedError;
pub use policy::{ClientId, FairShare, Fifo, JobMeta, Policy, Priority, StrictPriority};
pub use scheduler::{JobHandle, JobRequest, SchedConfig, Scheduler};
