//! Scheduling policies: who runs next.
//!
//! A [`Policy`] sees the pending queue (admission order, never empty) and
//! picks one job to dispatch. It is consulted under the scheduler lock, so
//! implementations keep their own state without further synchronization —
//! but they must be deterministic given the same call sequence, because the
//! property suite replays interleavings against a serial oracle.

use std::collections::HashMap;

/// Opaque client identity for fair-share accounting.
pub type ClientId = u32;

/// Job priority classes. Ordering is by urgency (`Low < Normal < High`);
/// backpressure sheds/delays only `Low` (DESIGN.md §5i).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    Low,
    Normal,
    High,
}

/// What a policy gets to see about one pending job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMeta {
    /// Admission sequence number (monotonic per scheduler); FIFO order.
    pub seq: u64,
    /// Scheduler-assigned job id (monotonic from 1).
    pub job_id: u64,
    /// Submitting client, the fair-share accounting unit.
    pub client: ClientId,
    pub priority: Priority,
    /// Caller-declared relative cost (e.g. aggregator dimension). Only
    /// fair-share interprets it; 1 is a fine default for uniform jobs.
    pub cost: u64,
}

/// Picks the next pending job to dispatch.
pub trait Policy: Send {
    fn name(&self) -> &'static str;

    /// Index into `pending` of the job to dispatch next. `pending` is
    /// non-empty and in admission order (ascending `seq`).
    fn select(&mut self, pending: &[JobMeta]) -> usize;
}

/// First-in, first-out: admission order, no client or priority awareness.
/// The baseline a bursty adversary exploits — `bench_jobs` measures exactly
/// that.
#[derive(Debug, Default)]
pub struct Fifo;

impl Policy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(&mut self, _pending: &[JobMeta]) -> usize {
        0 // admission order
    }
}

/// Strict priority: highest [`Priority`] first, FIFO within a class. Starves
/// low classes by design — use fair-share when starvation is unacceptable.
#[derive(Debug, Default)]
pub struct StrictPriority;

impl Policy for StrictPriority {
    fn name(&self) -> &'static str {
        "strict-priority"
    }

    fn select(&mut self, pending: &[JobMeta]) -> usize {
        let best = pending.iter().map(|m| m.priority).max().expect("non-empty");
        // First occurrence = lowest seq within the top class (FIFO tiebreak).
        pending.iter().position(|m| m.priority == best).expect("max exists")
    }
}

/// Fair share via deficit round-robin (DRR) over clients.
///
/// Each visit grants a client `quantum` units of deficit; a client's
/// head-of-line job runs when its deficit covers the job's declared `cost`.
/// Clients with nothing pending leave the rotation and forfeit their
/// deficit (no banking while idle) — that is what bounds a well-behaved
/// client's wait to O(one adversary job) instead of O(whole burst).
#[derive(Debug)]
pub struct FairShare {
    quantum: u64,
    deficits: HashMap<ClientId, u64>,
    /// The client id the next rotation starts from (round-robin cursor).
    resume_from: ClientId,
}

impl FairShare {
    /// `quantum` is the per-visit deficit grant, in the same units as
    /// [`JobMeta::cost`]. Sizing it near the typical *small* job cost gives
    /// the classic DRR behavior: small jobs flow every cycle, big jobs wait
    /// for their client's deficit to build up.
    pub fn new(quantum: u64) -> Self {
        Self { quantum: quantum.max(1), deficits: HashMap::new(), resume_from: 0 }
    }
}

impl Policy for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn select(&mut self, pending: &[JobMeta]) -> usize {
        // Head-of-line job per client, clients in ascending id order for a
        // deterministic rotation.
        let mut heads: Vec<(ClientId, usize)> = Vec::new();
        for (i, m) in pending.iter().enumerate() {
            if !heads.iter().any(|(c, _)| *c == m.client) {
                heads.push((m.client, i));
            }
        }
        heads.sort_unstable_by_key(|(c, _)| *c);
        // Idle clients leave the rotation and lose their bank.
        self.deficits.retain(|c, _| heads.iter().any(|(h, _)| h == c));

        let n = heads.len();
        let start = heads.iter().position(|(c, _)| *c >= self.resume_from).unwrap_or(0);
        // Each pass grants every present client one quantum; some client's
        // deficit eventually covers its head job, so this terminates.
        loop {
            for k in 0..n {
                let (client, head) = heads[(start + k) % n];
                let d = self.deficits.entry(client).or_insert(0);
                *d += self.quantum;
                if *d >= pending[head].cost {
                    *d -= pending[head].cost;
                    self.resume_from = client.wrapping_add(1);
                    return head;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(seq: u64, client: ClientId, cost: u64) -> JobMeta {
        JobMeta { seq, job_id: seq, client, priority: Priority::Normal, cost }
    }

    #[test]
    fn fifo_takes_admission_order() {
        let mut p = Fifo;
        let pending = [meta(3, 1, 1), meta(4, 0, 1)];
        assert_eq!(p.select(&pending), 0);
    }

    #[test]
    fn strict_priority_prefers_high_then_fifo() {
        let mut p = StrictPriority;
        let mut pending = vec![meta(0, 0, 1), meta(1, 1, 1), meta(2, 1, 1)];
        pending[1].priority = Priority::High;
        pending[2].priority = Priority::High;
        assert_eq!(p.select(&pending), 1, "earliest job of the top class");
        pending[1].priority = Priority::Low;
        pending[0].priority = Priority::Low;
        assert_eq!(p.select(&pending), 2);
    }

    #[test]
    fn fair_share_interleaves_clients() {
        // Client 0 has a burst of cheap jobs, client 1 one cheap job: the
        // single client-1 job must run within the first two selections, not
        // behind the whole burst.
        let mut p = FairShare::new(1);
        let mut pending: Vec<JobMeta> =
            (0..8).map(|s| meta(s, 0, 1)).chain([meta(8, 1, 1)]).collect();
        let mut served_client1_at = None;
        for round in 0..3 {
            let idx = p.select(&pending);
            if pending[idx].client == 1 {
                served_client1_at = Some(round);
                break;
            }
            pending.remove(idx);
        }
        assert!(
            matches!(served_client1_at, Some(r) if r <= 1),
            "client 1 served within two rounds: {served_client1_at:?}"
        );
    }

    #[test]
    fn fair_share_makes_expensive_jobs_wait_for_deficit() {
        // Client 0's head job costs 8 quanta; client 1's cost 1. Client 1
        // gets ~8 serves while client 0's deficit accumulates, then client
        // 0 runs — bounded sharing, not starvation.
        let mut p = FairShare::new(1);
        let mut pending: Vec<JobMeta> =
            [meta(0, 0, 8)].into_iter().chain((1..12).map(|s| meta(s, 1, 1))).collect();
        let mut order = Vec::new();
        for _ in 0..9 {
            let idx = p.select(&pending);
            order.push(pending[idx].client);
            pending.remove(idx);
        }
        assert!(order.contains(&0), "expensive client eventually served: {order:?}");
        assert!(
            order.iter().filter(|c| **c == 1).count() >= 6,
            "cheap client flows while the deficit builds: {order:?}"
        );
    }

    #[test]
    fn fair_share_is_deterministic() {
        let run = || {
            let mut p = FairShare::new(2);
            let mut pending: Vec<JobMeta> = (0..10).map(|s| meta(s, (s % 3) as u32, 1 + s % 4)).collect();
            let mut order = Vec::new();
            while !pending.is_empty() {
                let idx = p.select(&pending);
                order.push(pending[idx].seq);
                pending.remove(idx);
            }
            order
        };
        assert_eq!(run(), run());
    }
}
