//! Labelled sparse data points.

use std::sync::Arc;

use sparker_data::synth::SparseExample;
use sparker_net::codec::{Decoder, Encoder, Payload};
use sparker_net::error::NetResult;

/// A labelled sparse feature vector, the RDD item of LR/SVM training.
///
/// Feature arrays are behind `Arc` because cached partitions are iterated by
/// cloning, and a training run iterates the dataset every pass — cloning a
/// pointer beats cloning a 40-element vector 45 million times.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    /// +1.0 or −1.0.
    pub label: f64,
    pub indices: Arc<Vec<u32>>,
    pub values: Arc<Vec<f64>>,
}

impl LabeledPoint {
    pub fn new(label: f64, indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len());
        Self { label, indices: Arc::new(indices), values: Arc::new(values) }
    }

    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Margin `w · x`.
    pub fn margin(&self, w: &[f64]) -> f64 {
        crate::linalg::sparse_dot(&self.indices, &self.values, w)
    }
}

impl From<SparseExample> for LabeledPoint {
    fn from(e: SparseExample) -> Self {
        Self::new(e.label, e.indices, e.values)
    }
}

impl Payload for LabeledPoint {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_f64(self.label);
        enc.put_u32_slice(&self.indices);
        enc.put_f64_slice(&self.values);
    }
    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        let label = dec.get_f64()?;
        let indices = dec.get_u32_vec()?;
        let values = dec.get_f64_vec()?;
        Ok(Self { label, indices: Arc::new(indices), values: Arc::new(values) })
    }
    fn size_hint(&self) -> usize {
        8 + 16 + 4 * self.indices.len() + 8 * self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_uses_sparse_dot() {
        let p = LabeledPoint::new(1.0, vec![0, 2], vec![2.0, 3.0]);
        assert_eq!(p.margin(&[1.0, 100.0, 10.0]), 32.0);
        assert_eq!(p.nnz(), 2);
    }

    #[test]
    fn payload_roundtrip() {
        let p = LabeledPoint::new(-1.0, vec![1, 5, 9], vec![0.5, -1.0, 2.0]);
        let back = LabeledPoint::from_frame(p.to_frame()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_sparse_example() {
        let gen = sparker_data::synth::ClassificationGen::new(1, 100, 5);
        let e = gen.sample(0);
        let p: LabeledPoint = e.clone().into();
        assert_eq!(p.label, e.label);
        assert_eq!(*p.indices, e.indices);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        LabeledPoint::new(1.0, vec![1], vec![]);
    }
}
