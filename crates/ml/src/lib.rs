//! # sparker-ml
//!
//! An MLlib-like machine learning library on the Sparker engine — the three
//! workloads the paper evaluates (Table 3):
//!
//! * [`logistic`] — Logistic Regression (`regParam = 0`,
//!   `elasticNetParam = 0`), gradient descent;
//! * [`svm`] — linear SVM (`miniBatchFraction = 1.0`, `regParam = 0.01`),
//!   hinge-loss subgradient descent;
//! * [`lda`] — LDA topic model (`K = 100` at paper scale), EM over a
//!   topic-mixture model whose per-iteration sufficient statistics are a
//!   dense `K × V` matrix — the huge aggregator that makes LDA-N the
//!   paper's flagship scalability case.
//!
//! Every model's per-iteration aggregator is a **dense `f64` vector** (a
//! gradient plus loss/count scalars, or a flattened count matrix), exactly
//! like MLlib's `RDDLossFunction` aggregators in the paper's Figure 7. That
//! shared shape means one splittable-object implementation serves all
//! models: `splitOp` slices the vector, `reduceOp` adds element-wise,
//! `concatOp` concatenates ([`aggregator`]). Each trainer takes an
//! [`glm::AggregationMode`] switch — `Tree`, `TreeImm`, or `Split` — which
//! is the paper's "MLlib users only need a configuration parameter".

pub mod aggregator;
pub mod eval;
pub mod glm;
pub mod lbfgs;
pub mod lda;
pub mod linalg;
pub mod logistic;
pub mod point;
pub mod svm;

pub use aggregator::DenseAgg;
pub use glm::{AggregationMode, GdConfig, TrainRecord};
pub use lda::{LdaConfig, LdaModel};
pub use logistic::LogisticRegression;
pub use point::LabeledPoint;
pub use svm::LinearSvm;
