//! Logistic regression (the paper's LR workload, Table 3:
//! `regParam = 0`, `elasticNetParam = 0`).

use sparker_engine::dataset::Dataset;
use sparker_engine::task::EngineResult;

use crate::glm::{run_gradient_descent, AggregationMode, GdConfig, GradientKind, TrainRecord};

use crate::point::LabeledPoint;

/// Logistic-regression trainer.
#[derive(Debug, Clone, Copy)]
pub struct LogisticRegression {
    pub iterations: usize,
    pub step_size: f64,
    /// Paper setting: 0.0.
    pub reg_param: f64,
    pub mode: AggregationMode,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self { iterations: 20, step_size: 1.0, reg_param: 0.0, mode: AggregationMode::Tree }
    }
}

/// Trained logistic model.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    pub weights: Vec<f64>,
}

impl LogisticModel {
    /// P(y = +1 | x).
    pub fn predict_probability(&self, p: &LabeledPoint) -> f64 {
        1.0 / (1.0 + (-p.margin(&self.weights)).exp())
    }

    /// Hard ±1 prediction.
    pub fn predict(&self, p: &LabeledPoint) -> f64 {
        if p.margin(&self.weights) > 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of correctly classified points.
    pub fn accuracy(&self, points: &[LabeledPoint]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let ok = points.iter().filter(|p| self.predict(p) == p.label).count();
        ok as f64 / points.len() as f64
    }
}

impl LogisticRegression {
    pub fn with_mode(mut self, mode: AggregationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Trains with L-BFGS (what MLlib's `LogisticRegression` actually runs;
    /// see [`crate::lbfgs`]). Typically converges in far fewer distributed
    /// aggregations than gradient descent.
    pub fn train_lbfgs(
        &self,
        data: &Dataset<LabeledPoint>,
        dim: usize,
    ) -> EngineResult<(LogisticModel, Vec<crate::lbfgs::LbfgsRecord>)> {
        let cfg = crate::lbfgs::LbfgsConfig {
            max_iterations: self.iterations,
            reg_param: self.reg_param,
            mode: self.mode,
            ..Default::default()
        };
        let (weights, records) =
            crate::lbfgs::minimize(data, dim, GradientKind::Logistic, cfg)?;
        Ok((LogisticModel { weights }, records))
    }

    /// Trains on `data` with feature dimension `dim`.
    pub fn train(
        &self,
        data: &Dataset<LabeledPoint>,
        dim: usize,
    ) -> EngineResult<(LogisticModel, Vec<TrainRecord>)> {
        let cfg = GdConfig {
            iterations: self.iterations,
            step_size: self.step_size,
            reg_param: self.reg_param,
            mini_batch_fraction: 1.0,
            mode: self.mode,
        };
        let (weights, records) = run_gradient_descent(data, dim, GradientKind::Logistic, cfg)?;
        Ok((LogisticModel { weights }, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_data::synth::ClassificationGen;
    use sparker_engine::cluster::LocalCluster;

    #[test]
    fn trains_on_synthetic_dataset_and_beats_chance() {
        let cluster = LocalCluster::local(2, 2);
        let gen = ClassificationGen::new(7, 64, 8);
        let dim = 64;
        let gen2 = gen.clone();
        let ds = cluster.generate(4, move |p| {
            gen2.partition(p, 4, 2000)
                .into_iter()
                .map(LabeledPoint::from)
                .collect()
        });
        let (model, records) = LogisticRegression { iterations: 40, ..Default::default() }
            .train(&ds, dim)
            .unwrap();
        let test: Vec<LabeledPoint> =
            (2000..2600).map(|i| LabeledPoint::from(gen.sample(i))).collect();
        let acc = model.accuracy(&test);
        assert!(acc >= 0.68, "test accuracy {acc}");
        assert!(records.last().unwrap().loss < records[0].loss);
    }

    #[test]
    fn split_mode_trains_identically() {
        let cluster = LocalCluster::local(3, 2);
        let gen = ClassificationGen::new(9, 32, 5);
        let mk = |g: ClassificationGen| {
            cluster.generate(3, move |p| {
                g.partition(p, 3, 300).into_iter().map(LabeledPoint::from).collect()
            })
        };
        let ds = mk(gen.clone());
        let lr = LogisticRegression { iterations: 5, ..Default::default() };
        let (m_tree, _) = lr.train(&ds, 32).unwrap();
        let (m_split, _) = lr.with_mode(AggregationMode::split()).train(&ds, 32).unwrap();
        for (a, b) in m_tree.weights.iter().zip(&m_split.weights) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn lbfgs_training_beats_gd_loss_at_equal_evaluations() {
        let cluster = LocalCluster::local(2, 2);
        let gen = ClassificationGen::new(91, 40, 6);
        let g = gen.clone();
        let ds = cluster.generate(4, move |p| {
            g.partition(p, 4, 600).into_iter().map(LabeledPoint::from).collect()
        });
        let lr = LogisticRegression { iterations: 10, ..Default::default() };
        let (_, gd_rec) = lr.train(&ds, 40).unwrap();
        let (model, lbfgs_rec) = lr.train_lbfgs(&ds, 40).unwrap();
        let gd_best = gd_rec.iter().map(|r| r.loss).fold(f64::INFINITY, f64::min);
        let lbfgs_best = lbfgs_rec.iter().map(|r| r.loss).fold(f64::INFINITY, f64::min);
        assert!(lbfgs_best <= gd_best * 1.05, "{lbfgs_best} vs {gd_best}");
        assert!(!model.weights.iter().any(|w| w.is_nan()));
    }

    #[test]
    fn probability_is_monotone_in_margin() {
        let model = LogisticModel { weights: vec![1.0, 0.0] };
        let hi = LabeledPoint::new(1.0, vec![0], vec![3.0]);
        let lo = LabeledPoint::new(1.0, vec![0], vec![-3.0]);
        assert!(model.predict_probability(&hi) > 0.9);
        assert!(model.predict_probability(&lo) < 0.1);
        assert_eq!(model.predict(&hi), 1.0);
        assert_eq!(model.predict(&lo), -1.0);
    }

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let model = LogisticModel { weights: vec![1.0] };
        assert_eq!(model.accuracy(&[]), 0.0);
    }
}
