//! Small dense/sparse linear-algebra kernels used by the trainers.

/// Dense dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sparse·dense dot product.
pub fn sparse_dot(indices: &[u32], values: &[f64], w: &[f64]) -> f64 {
    indices
        .iter()
        .zip(values)
        .map(|(&i, &v)| w.get(i as usize).copied().unwrap_or(0.0) * v)
        .sum()
}

/// `y += alpha * x` (dense).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y[i] += alpha * v` for sparse `(i, v)` pairs.
pub fn sparse_axpy(alpha: f64, indices: &[u32], values: &[f64], y: &mut [f64]) {
    for (&i, &v) in indices.iter().zip(values) {
        if let Some(slot) = y.get_mut(i as usize) {
            *slot += alpha * v;
        }
    }
}

/// `x *= alpha` in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Numerically-stable log(1 + e^x).
pub fn log1p_exp(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn sparse_dot_skips_missing() {
        let w = [1.0, 2.0, 3.0];
        assert_eq!(sparse_dot(&[0, 2], &[10.0, 1.0], &w), 13.0);
        // Out-of-range index contributes 0, not a panic.
        assert_eq!(sparse_dot(&[5], &[1.0], &w), 0.0);
    }

    #[test]
    fn axpy_variants() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, 1.0, -1.0]);
        sparse_axpy(10.0, &[1], &[0.5], &mut y);
        assert_eq!(y, vec![3.0, 6.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn log1p_exp_is_stable_and_correct() {
        for x in [-700.0, -10.0, -1.0, 0.0, 1.0, 10.0, 700.0] {
            let got = log1p_exp(x);
            assert!(got.is_finite(), "x={x}");
            if x.abs() < 20.0 {
                let want = (1.0 + x.exp()).ln();
                assert!((got - want).abs() < 1e-12, "x={x}: {got} vs {want}");
            }
        }
        // Large x: log(1+e^x) ~ x.
        assert!((log1p_exp(700.0) - 700.0).abs() < 1e-9);
        // Very negative: ~ e^x ~ 0.
        assert!(log1p_exp(-700.0) >= 0.0);
    }
}
