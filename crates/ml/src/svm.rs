//! Linear SVM (the paper's SVM workload, Table 3:
//! `miniBatchFraction = 1.0`, `regParam = 0.01`).

use sparker_engine::dataset::Dataset;
use sparker_engine::task::EngineResult;

use crate::glm::{run_gradient_descent, AggregationMode, GdConfig, GradientKind, TrainRecord};
use crate::point::LabeledPoint;

/// Hinge-loss SVM trainer (MLlib's `SVMWithSGD`).
#[derive(Debug, Clone, Copy)]
pub struct LinearSvm {
    pub iterations: usize,
    pub step_size: f64,
    /// Paper setting: 0.01.
    pub reg_param: f64,
    /// Paper setting: 1.0.
    pub mini_batch_fraction: f64,
    pub mode: AggregationMode,
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self {
            iterations: 20,
            step_size: 1.0,
            reg_param: 0.01,
            mini_batch_fraction: 1.0,
            mode: AggregationMode::Tree,
        }
    }
}

/// Trained SVM model.
#[derive(Debug, Clone)]
pub struct SvmModel {
    pub weights: Vec<f64>,
}

impl SvmModel {
    pub fn predict(&self, p: &LabeledPoint) -> f64 {
        if p.margin(&self.weights) > 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    pub fn accuracy(&self, points: &[LabeledPoint]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let ok = points.iter().filter(|p| self.predict(p) == p.label).count();
        ok as f64 / points.len() as f64
    }
}

impl LinearSvm {
    pub fn with_mode(mut self, mode: AggregationMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn train(
        &self,
        data: &Dataset<LabeledPoint>,
        dim: usize,
    ) -> EngineResult<(SvmModel, Vec<TrainRecord>)> {
        let cfg = GdConfig {
            iterations: self.iterations,
            step_size: self.step_size,
            reg_param: self.reg_param,
            mini_batch_fraction: self.mini_batch_fraction,
            mode: self.mode,
        };
        let (weights, records) = run_gradient_descent(data, dim, GradientKind::Hinge, cfg)?;
        Ok((SvmModel { weights }, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_data::synth::ClassificationGen;
    use sparker_engine::cluster::LocalCluster;

    #[test]
    fn svm_learns_synthetic_data() {
        let cluster = LocalCluster::local(2, 2);
        let gen = ClassificationGen::new(21, 48, 6);
        let g = gen.clone();
        let ds = cluster.generate(4, move |p| {
            g.partition(p, 4, 1600).into_iter().map(LabeledPoint::from).collect()
        });
        let (model, records) = LinearSvm { iterations: 40, ..Default::default() }
            .train(&ds, 48)
            .unwrap();
        let test: Vec<LabeledPoint> =
            (1600..2100).map(|i| LabeledPoint::from(gen.sample(i))).collect();
        let acc = model.accuracy(&test);
        assert!(acc >= 0.68, "test accuracy {acc}");
        assert_eq!(records.len(), 40);
    }

    #[test]
    fn paper_parameters_are_defaults() {
        let svm = LinearSvm::default();
        assert_eq!(svm.reg_param, 0.01);
        assert_eq!(svm.mini_batch_fraction, 1.0);
    }

    #[test]
    fn split_mode_matches_tree_mode() {
        let cluster = LocalCluster::local(2, 2);
        let gen = ClassificationGen::new(23, 16, 4);
        let g = gen.clone();
        let ds = cluster.generate(2, move |p| {
            g.partition(p, 2, 100).into_iter().map(LabeledPoint::from).collect()
        });
        let svm = LinearSvm { iterations: 4, ..Default::default() };
        let (m1, _) = svm.train(&ds, 16).unwrap();
        let (m2, _) = svm.with_mode(AggregationMode::split()).train(&ds, 16).unwrap();
        for (a, b) in m1.weights.iter().zip(&m2.weights) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
