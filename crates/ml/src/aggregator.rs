//! The splittable dense aggregator shared by every model.
//!
//! The paper's Figure 7 shows MLlib aggregators are structs of dense `f64`
//! arrays whose `merge` is element-wise summation. We flatten each model's
//! aggregator into **one** dense vector with a model-defined layout
//! (gradient ‖ loss ‖ count, or sufficient-stats matrix ‖ totals ‖ counters)
//! so a single set of SAI callbacks serves all models:
//!
//! * `splitOp(u, i, n)` → contiguous slice `i` of `n` ([`split_dense`]);
//! * `reduceOp(a, b)` → element-wise add ([`merge_segments`]);
//! * `concatOp(segments)` → concatenation ([`concat_dense`]).
//!
//! Property: for any vector and any `(i, n)` decomposition,
//! `concat(split(u)) == u` and split-then-reduce equals reduce-then-split —
//! the invariants the property tests pin down.

pub use sparker_collectives::segment::{slice_bounds, SumSegment};
use sparker_net::codec::F64Array;

/// A model aggregator: one dense `f64` vector (see module docs).
pub type DenseAgg = F64Array;

/// Creates a zeroed aggregator of length `n`.
pub fn zeros(n: usize) -> DenseAgg {
    F64Array(vec![0.0; n])
}

/// Element-wise in-place merge of aggregators (the executor-local IMM merge).
pub fn merge_dense(a: &mut DenseAgg, b: DenseAgg) {
    assert_eq!(a.0.len(), b.0.len(), "aggregator shape mismatch");
    for (x, y) in a.0.iter_mut().zip(b.0) {
        *x += y;
    }
}

/// The paper's `splitOp`: segment `i` of `n` as a contiguous slice.
pub fn split_dense(u: &DenseAgg, i: usize, n: usize) -> SumSegment {
    let (lo, hi) = slice_bounds(u.0.len(), i, n);
    SumSegment(u.0[lo..hi].to_vec())
}

/// The paper's `reduceOp` on segments: element-wise add.
pub fn merge_segments(a: &mut SumSegment, b: SumSegment) {
    assert_eq!(a.0.len(), b.0.len(), "segment shape mismatch");
    for (x, y) in a.0.iter_mut().zip(b.0) {
        *x += y;
    }
}

/// The paper's `concatOp`: segments in index order → full vector.
pub fn concat_dense(segments: Vec<SumSegment>) -> DenseAgg {
    F64Array(segments.into_iter().flat_map(|s| s.0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_inverts_split() {
        let u = F64Array((0..103).map(|i| i as f64 * 0.25).collect());
        for n in [1, 2, 7, 16, 103, 200] {
            let segs: Vec<SumSegment> = (0..n).map(|i| split_dense(&u, i, n)).collect();
            let back = concat_dense(segs);
            assert_eq!(back, u, "n={n}");
        }
    }

    #[test]
    fn split_then_reduce_equals_reduce_then_split() {
        let a = F64Array((0..50).map(|i| i as f64).collect());
        let b = F64Array((0..50).map(|i| 100.0 - i as f64).collect());
        let n = 7;
        // reduce then split
        let mut whole = a.clone();
        merge_dense(&mut whole, b.clone());
        let direct: Vec<SumSegment> = (0..n).map(|i| split_dense(&whole, i, n)).collect();
        // split then reduce
        let split_first: Vec<SumSegment> = (0..n)
            .map(|i| {
                let mut s = split_dense(&a, i, n);
                merge_segments(&mut s, split_dense(&b, i, n));
                s
            })
            .collect();
        assert_eq!(direct, split_first);
    }

    #[test]
    fn zeros_is_merge_identity() {
        let u = F64Array(vec![1.5, -2.0, 3.0]);
        let mut z = zeros(3);
        merge_dense(&mut z, u.clone());
        assert_eq!(z, u);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_shape_mismatch_panics() {
        merge_dense(&mut zeros(3), zeros(4));
    }
}
