//! The splittable dense aggregator shared by every model.
//!
//! The paper's Figure 7 shows MLlib aggregators are structs of dense `f64`
//! arrays whose `merge` is element-wise summation. We flatten each model's
//! aggregator into **one** dense vector with a model-defined layout
//! (gradient ‖ loss ‖ count, or sufficient-stats matrix ‖ totals ‖ counters)
//! so a single set of SAI callbacks serves all models:
//!
//! * `splitOp(u, i, n)` → contiguous slice `i` of `n` ([`split_dense`]);
//! * `reduceOp(a, b)` → element-wise add ([`merge_segments`]);
//! * `concatOp(segments)` → concatenation ([`concat_dense`]).
//!
//! Property: for any vector and any `(i, n)` decomposition,
//! `concat(split(u)) == u` and split-then-reduce equals reduce-then-split —
//! the invariants the property tests pin down.
//!
//! The second half of this module is the same interface for **sparse**
//! aggregators: the executor-local `U` is a [`SparseAccum`] and segments
//! are [`DenseOrSparse`], so Zipfian/power-law workloads (sparse LR
//! gradients, LDA word counts) ship only their non-zeros until merge
//! fill-in makes dense cheaper.

pub use sparker_collectives::segment::{slice_bounds, SumSegment};
pub use sparker_sparse::{
    DenseOrSparse, SparseAccum, SparseSegment, DEFAULT_DENSITY_THRESHOLD, NEVER_DENSIFY,
};

use sparker_data::synth::{Document, SparseExample};
use sparker_net::codec::F64Array;

/// A model aggregator: one dense `f64` vector (see module docs).
pub type DenseAgg = F64Array;

/// Creates a zeroed aggregator of length `n`.
pub fn zeros(n: usize) -> DenseAgg {
    F64Array(vec![0.0; n])
}

/// Element-wise in-place merge of aggregators (the executor-local IMM merge).
pub fn merge_dense(a: &mut DenseAgg, b: DenseAgg) {
    assert_eq!(a.0.len(), b.0.len(), "aggregator shape mismatch");
    for (x, y) in a.0.iter_mut().zip(b.0) {
        *x += y;
    }
}

/// The paper's `splitOp`: segment `i` of `n` as a contiguous slice.
pub fn split_dense(u: &DenseAgg, i: usize, n: usize) -> SumSegment {
    let (lo, hi) = slice_bounds(u.0.len(), i, n);
    SumSegment(u.0[lo..hi].to_vec())
}

/// The paper's `reduceOp` on segments: element-wise add.
pub fn merge_segments(a: &mut SumSegment, b: SumSegment) {
    assert_eq!(a.0.len(), b.0.len(), "segment shape mismatch");
    for (x, y) in a.0.iter_mut().zip(b.0) {
        *x += y;
    }
}

/// The paper's `concatOp`: segments in index order → full vector.
pub fn concat_dense(segments: Vec<SumSegment>) -> DenseAgg {
    F64Array(segments.into_iter().flat_map(|s| s.0).collect())
}

// ---------------------------------------------------------------------------
// Sparse SAI: same splitOp/reduceOp/concatOp contract over SparseAccum and
// DenseOrSparse segments.
// ---------------------------------------------------------------------------

/// Creates an empty sparse aggregator over a logical length `n`.
pub fn zeros_sparse(n: usize) -> SparseAccum {
    SparseAccum::zeros(n)
}

/// Executor-local IMM merge of sparse aggregators.
pub fn merge_sparse(a: &mut SparseAccum, b: SparseAccum) {
    a.merge(&b);
}

/// Sparse `splitOp` with the default density threshold: segments below it
/// ship sparse, above it dense, and they densify mid-reduction on fill-in.
pub fn split_adaptive(u: &SparseAccum, i: usize, n: usize) -> DenseOrSparse {
    u.segment(i, n, DEFAULT_DENSITY_THRESHOLD)
}

/// Sparse `splitOp` that never densifies — the forced-sparse ablation arm.
pub fn split_sparse(u: &SparseAccum, i: usize, n: usize) -> DenseOrSparse {
    u.segment(i, n, NEVER_DENSIFY)
}

/// `reduceOp` on adaptive segments (sorted-union add, with the SSAR
/// dense switch when fill-in crosses the segment's threshold).
pub fn merge_adaptive_segments(a: &mut DenseOrSparse, b: DenseOrSparse) {
    a.merge(&b);
}

/// `concatOp` on adaptive segments: segments in index order → one
/// full-length segment, re-choosing its representation by the overall
/// density (threshold taken from the first segment).
pub fn concat_adaptive(segments: Vec<DenseOrSparse>) -> DenseOrSparse {
    let threshold =
        segments.first().map_or(DEFAULT_DENSITY_THRESHOLD, DenseOrSparse::threshold);
    let mut dense = Vec::with_capacity(segments.iter().map(DenseOrSparse::dense_len).sum());
    for seg in segments {
        dense.extend(seg.into_dense());
    }
    DenseOrSparse::from_dense(dense, threshold)
}

/// Folds one classification example into a sparse log-loss gradient
/// accumulator of length `w.len()` (the per-partition `seqOp`).
///
/// For label `y ∈ {±1}`, the log-loss gradient is `−y · σ(−y·wᵀx) · x`,
/// which touches only the example's non-zero coordinates — the reason the
/// per-partition aggregator stays sparse on high-dimensional data.
pub fn fold_logistic_sparse(mut acc: SparseAccum, ex: &SparseExample, w: &[f64]) -> SparseAccum {
    assert_eq!(acc.dense_len(), w.len(), "aggregator/weight shape mismatch");
    let margin = ex.dot(w);
    let scale = -ex.label / (1.0 + (ex.label * margin).exp());
    for (&i, &v) in ex.indices.iter().zip(&ex.values) {
        acc.add(i, scale * v);
    }
    acc
}

/// Folds one bag-of-words document into a sparse word-count accumulator of
/// vocabulary length (LDA's per-partition sufficient statistics for one
/// topic slice).
pub fn fold_doc_counts_sparse(mut acc: SparseAccum, doc: &Document) -> SparseAccum {
    for &(word, count) in &doc.words {
        acc.add(word, count as f64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_inverts_split() {
        let u = F64Array((0..103).map(|i| i as f64 * 0.25).collect());
        for n in [1, 2, 7, 16, 103, 200] {
            let segs: Vec<SumSegment> = (0..n).map(|i| split_dense(&u, i, n)).collect();
            let back = concat_dense(segs);
            assert_eq!(back, u, "n={n}");
        }
    }

    #[test]
    fn split_then_reduce_equals_reduce_then_split() {
        let a = F64Array((0..50).map(|i| i as f64).collect());
        let b = F64Array((0..50).map(|i| 100.0 - i as f64).collect());
        let n = 7;
        // reduce then split
        let mut whole = a.clone();
        merge_dense(&mut whole, b.clone());
        let direct: Vec<SumSegment> = (0..n).map(|i| split_dense(&whole, i, n)).collect();
        // split then reduce
        let split_first: Vec<SumSegment> = (0..n)
            .map(|i| {
                let mut s = split_dense(&a, i, n);
                merge_segments(&mut s, split_dense(&b, i, n));
                s
            })
            .collect();
        assert_eq!(direct, split_first);
    }

    #[test]
    fn zeros_is_merge_identity() {
        let u = F64Array(vec![1.5, -2.0, 3.0]);
        let mut z = zeros(3);
        merge_dense(&mut z, u.clone());
        assert_eq!(z, u);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_shape_mismatch_panics() {
        merge_dense(&mut zeros(3), zeros(4));
    }

    #[test]
    fn sparse_concat_inverts_split() {
        let mut u = zeros_sparse(103);
        for i in (0..103u32).step_by(9) {
            u.add(i, i as f64 + 0.5);
        }
        for n in [1, 2, 7, 16] {
            for split in [split_adaptive, split_sparse] {
                let segs: Vec<DenseOrSparse> = (0..n).map(|i| split(&u, i, n)).collect();
                let back = concat_adaptive(segs);
                assert_eq!(back.to_dense(), u.to_dense(), "n={n}");
            }
        }
    }

    #[test]
    fn sparse_split_then_reduce_equals_reduce_then_split() {
        let mut a = zeros_sparse(50);
        let mut b = zeros_sparse(50);
        for i in 0..50u32 {
            if i % 3 == 0 {
                a.add(i, i as f64);
            }
            if i % 4 == 0 {
                b.add(i, 100.0 - i as f64);
            }
        }
        let n = 7;
        let mut whole = a.clone();
        merge_sparse(&mut whole, b.clone());
        for i in 0..n {
            let direct = split_adaptive(&whole, i, n);
            let mut split_first = split_adaptive(&a, i, n);
            merge_adaptive_segments(&mut split_first, split_adaptive(&b, i, n));
            assert_eq!(direct.to_dense(), split_first.to_dense(), "segment {i}");
        }
    }

    #[test]
    fn logistic_fold_matches_dense_gradient() {
        use sparker_data::synth::SparseExample;
        let w = vec![0.1, -0.2, 0.3, 0.0, 0.5];
        let ex = SparseExample { label: 1.0, indices: vec![0, 2, 4], values: vec![1.0, 2.0, -1.0] };
        let acc = fold_logistic_sparse(zeros_sparse(5), &ex, &w);
        // Dense reference.
        let margin: f64 = 0.1 * 1.0 + 0.3 * 2.0 + 0.5 * -1.0;
        let scale = -1.0 / (1.0 + margin.exp());
        let mut want = vec![0.0; 5];
        for (&i, &v) in ex.indices.iter().zip(&ex.values) {
            want[i as usize] = scale * v;
        }
        assert_eq!(acc.to_dense(), want);
        assert_eq!(acc.nnz(), 3, "gradient support equals example support");
    }

    #[test]
    fn doc_fold_counts_words() {
        use sparker_data::synth::Document;
        let doc = Document { words: vec![(1, 2), (4, 1)] };
        let mut acc = fold_doc_counts_sparse(zeros_sparse(6), &doc);
        acc = fold_doc_counts_sparse(acc, &doc);
        assert_eq!(acc.to_dense(), vec![0.0, 4.0, 0.0, 0.0, 2.0, 0.0]);
    }
}
