//! L-BFGS optimization over distributed loss functions.
//!
//! The paper's Figure 7 is adapted from MLlib's `RDDLossFunction` — the
//! glue between Breeze's L-BFGS and a `treeAggregate` that computes
//! `(loss, gradient)` over the RDD each time the optimizer asks. MLlib's
//! `LogisticRegression` (the paper's LR workload) runs exactly this loop,
//! so a faithful reproduction needs the optimizer too, not just plain
//! gradient descent.
//!
//! This is standard two-loop-recursion L-BFGS with backtracking Armijo line
//! search. Every function/gradient evaluation is one distributed
//! aggregation — through whichever [`AggregationMode`] the caller picks —
//! which is precisely why the paper's aggregation cost dominates training.

use std::sync::Arc;

use sparker_engine::dataset::Dataset;
use sparker_engine::metrics::AggMetrics;
use sparker_engine::task::EngineResult;
use crate::aggregator::DenseAgg;
use crate::glm::{aggregate_dense, AggregationMode, GradientKind};
use crate::linalg::dot;
use crate::point::LabeledPoint;

/// L-BFGS hyperparameters (MLlib-flavoured defaults).
#[derive(Debug, Clone, Copy)]
pub struct LbfgsConfig {
    /// Maximum outer iterations (MLlib default 100).
    pub max_iterations: usize,
    /// History size `m` (MLlib default 10).
    pub history: usize,
    /// Convergence tolerance on relative loss improvement (MLlib 1e-6).
    pub tolerance: f64,
    /// L2 regularization.
    pub reg_param: f64,
    pub mode: AggregationMode,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        Self {
            max_iterations: 25,
            history: 10,
            tolerance: 1e-6,
            reg_param: 0.0,
            mode: AggregationMode::Tree,
        }
    }
}

/// Per-evaluation record (one distributed aggregation each).
#[derive(Debug, Clone)]
pub struct LbfgsRecord {
    pub evaluation: usize,
    pub loss: f64,
    pub metrics: AggMetrics,
}

/// One distributed `(loss, gradient)` evaluation — MLlib's
/// `RDDLossFunction.calculate`.
fn evaluate(
    data: &Dataset<LabeledPoint>,
    w: &[f64],
    kind: GradientKind,
    reg: f64,
    mode: AggregationMode,
) -> EngineResult<(f64, Vec<f64>, AggMetrics)> {
    let dim = w.len();
    let weights = Arc::new(w.to_vec());
    let seq = move |mut acc: DenseAgg, p: &LabeledPoint| {
        kind.accumulate(&weights, p, &mut acc.0);
        acc
    };
    let (agg, metrics) = aggregate_dense(data, dim + 2, seq, mode)?;
    let count = agg.0[dim + 1].max(1.0);
    let mut grad: Vec<f64> = agg.0[..dim].iter().map(|g| g / count).collect();
    let mut loss = agg.0[dim] / count;
    // L2 term.
    for i in 0..dim {
        grad[i] += reg * w[i];
        loss += 0.5 * reg * w[i] * w[i];
    }
    Ok((loss, grad, metrics))
}

/// Runs L-BFGS; returns final weights and the per-evaluation records.
pub fn minimize(
    data: &Dataset<LabeledPoint>,
    dim: usize,
    kind: GradientKind,
    cfg: LbfgsConfig,
) -> EngineResult<(Vec<f64>, Vec<LbfgsRecord>)> {
    assert!(dim >= 1 && cfg.max_iterations >= 1 && cfg.history >= 1);
    let mut w = vec![0.0f64; dim];
    let mut records = Vec::new();
    let mut eval_count = 0usize;
    let mut eval = |w: &[f64], records: &mut Vec<LbfgsRecord>| -> EngineResult<(f64, Vec<f64>)> {
        let mut eval_span = sparker_obs::trace::span(sparker_obs::Layer::Ml, "ml.evaluation");
        eval_span.arg("evaluation", eval_count as u64);
        let (loss, grad, metrics) = evaluate(data, w, kind, cfg.reg_param, cfg.mode)?;
        records.push(LbfgsRecord { evaluation: eval_count, loss, metrics });
        eval_count += 1;
        Ok((loss, grad))
    };

    let (mut loss, mut grad) = eval(&w, &mut records)?;
    // (s, y) pairs: s = x_{k+1} - x_k, y = g_{k+1} - g_k.
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();

    for _iter in 0..cfg.max_iterations {
        let mut iter_span = sparker_obs::trace::span(sparker_obs::Layer::Ml, "ml.iteration");
        iter_span.arg("iteration", _iter as u64);
        // Two-loop recursion for the search direction d = -H g.
        let mut q = grad.clone();
        let k = s_hist.len();
        let mut alphas = vec![0.0; k];
        for i in (0..k).rev() {
            let rho = 1.0 / dot(&y_hist[i], &s_hist[i]);
            let a = rho * dot(&s_hist[i], &q);
            alphas[i] = a;
            for (qj, yj) in q.iter_mut().zip(&y_hist[i]) {
                *qj -= a * yj;
            }
        }
        // Initial Hessian scaling gamma = s·y / y·y.
        if k > 0 {
            let gamma = dot(&s_hist[k - 1], &y_hist[k - 1]) / dot(&y_hist[k - 1], &y_hist[k - 1]);
            for qj in q.iter_mut() {
                *qj *= gamma;
            }
        }
        for i in 0..k {
            let rho = 1.0 / dot(&y_hist[i], &s_hist[i]);
            let b = rho * dot(&y_hist[i], &q);
            for (qj, sj) in q.iter_mut().zip(&s_hist[i]) {
                *qj += (alphas[i] - b) * sj;
            }
        }
        let direction: Vec<f64> = q.iter().map(|x| -x).collect();

        // Backtracking Armijo line search; each probe is one aggregation.
        let g_dot_d = dot(&grad, &direction);
        if g_dot_d >= 0.0 {
            break; // not a descent direction: numerical end state
        }
        let mut step = 1.0;
        let c1 = 1e-4;
        let mut accepted = None;
        for _ in 0..10 {
            let trial: Vec<f64> =
                w.iter().zip(&direction).map(|(wi, di)| wi + step * di).collect();
            let (trial_loss, trial_grad) = eval(&trial, &mut records)?;
            if trial_loss <= loss + c1 * step * g_dot_d {
                accepted = Some((trial, trial_loss, trial_grad));
                break;
            }
            step *= 0.5;
        }
        let Some((new_w, new_loss, new_grad)) = accepted else {
            break; // line search failed: converged to machine precision
        };

        // Update history.
        let s: Vec<f64> = new_w.iter().zip(&w).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = new_grad.iter().zip(&grad).map(|(a, b)| a - b).collect();
        if dot(&s, &y) > 1e-12 {
            s_hist.push(s);
            y_hist.push(y);
            if s_hist.len() > cfg.history {
                s_hist.remove(0);
                y_hist.remove(0);
            }
        }

        let improvement = (loss - new_loss).abs() / loss.abs().max(1e-12);
        w = new_w;
        grad = new_grad;
        loss = new_loss;
        if improvement < cfg.tolerance {
            break;
        }
    }
    Ok((w, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_data::synth::ClassificationGen;
    use sparker_engine::cluster::LocalCluster;

    fn dataset(cluster: &LocalCluster, seed: u64, dim: usize, n: u64) -> Dataset<LabeledPoint> {
        let gen = ClassificationGen::new(seed, dim, (dim / 6).max(2));
        let parts = 4;
        let ds = cluster.generate(parts, move |p| {
            gen.partition(p, parts, n).into_iter().map(LabeledPoint::from).collect()
        });
        let ds = ds.cache();
        ds.count().unwrap();
        ds
    }

    #[test]
    fn lbfgs_decreases_loss_monotonically_at_accepted_steps() {
        let cluster = LocalCluster::local(2, 2);
        let data = dataset(&cluster, 71, 48, 1000);
        let (_, records) =
            minimize(&data, 48, GradientKind::Logistic, LbfgsConfig::default()).unwrap();
        assert!(records.len() >= 3, "at least a few evaluations");
        let first = records[0].loss;
        let last = records.last().unwrap().loss;
        assert!(last < first, "loss must fall: {first} -> {last}");
    }

    #[test]
    fn lbfgs_converges_faster_than_gd_per_aggregation() {
        use crate::glm::{run_gradient_descent, GdConfig};
        let cluster = LocalCluster::local(2, 2);
        let data = dataset(&cluster, 73, 32, 800);
        let budget = 12; // distributed aggregations
        let (_, lbfgs_rec) = minimize(
            &data,
            32,
            GradientKind::Logistic,
            LbfgsConfig { max_iterations: budget, ..Default::default() },
        )
        .unwrap();
        let lbfgs_loss = lbfgs_rec
            .iter()
            .take(budget)
            .map(|r| r.loss)
            .fold(f64::INFINITY, f64::min);
        let (_, gd_rec) = run_gradient_descent(
            &data,
            32,
            GradientKind::Logistic,
            GdConfig { iterations: budget, ..Default::default() },
        )
        .unwrap();
        let gd_loss = gd_rec.iter().map(|r| r.loss).fold(f64::INFINITY, f64::min);
        assert!(
            lbfgs_loss < gd_loss * 1.02,
            "L-BFGS should match or beat GD per aggregation: {lbfgs_loss} vs {gd_loss}"
        );
    }

    #[test]
    fn lbfgs_is_aggregation_strategy_invariant() {
        let cluster = LocalCluster::local(3, 2);
        let data = dataset(&cluster, 79, 24, 400);
        let run = |mode| {
            minimize(
                &data,
                24,
                GradientKind::Logistic,
                LbfgsConfig { max_iterations: 5, mode, ..Default::default() },
            )
            .unwrap()
            .0
        };
        let w_tree = run(AggregationMode::Tree);
        let w_split = run(AggregationMode::split());
        for (a, b) in w_tree.iter().zip(&w_split) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn regularization_shrinks_weights() {
        let cluster = LocalCluster::local(2, 2);
        let data = dataset(&cluster, 83, 24, 500);
        let norm = |reg| {
            let (w, _) = minimize(
                &data,
                24,
                GradientKind::Logistic,
                LbfgsConfig { max_iterations: 8, reg_param: reg, ..Default::default() },
            )
            .unwrap();
            crate::linalg::norm2(&w)
        };
        let free = norm(0.0);
        let ridge = norm(1.0);
        assert!(ridge < free, "L2 must shrink: {free} vs {ridge}");
    }
}
