//! Classifier evaluation metrics.
//!
//! The paper evaluates systems performance, not model quality — but a
//! credible ML library needs both, and the reproduction's claim that split
//! aggregation is *semantics-preserving* is only checkable if model quality
//! is measurable. These metrics back the examples and integration tests.

use crate::point::LabeledPoint;

/// Binary-classification counts at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    pub tp: u64,
    pub fp: u64,
    pub tn: u64,
    pub fn_: u64,
}

impl Confusion {
    /// Tallies predictions of `predict` (±1) against labels (±1).
    pub fn tally(points: &[LabeledPoint], predict: impl Fn(&LabeledPoint) -> f64) -> Self {
        let mut c = Confusion::default();
        for p in points {
            let pos = predict(p) > 0.0;
            let truth = p.label > 0.0;
            match (pos, truth) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Mean logistic loss of margin scores against ±1 labels.
pub fn log_loss(points: &[LabeledPoint], margin: impl Fn(&LabeledPoint) -> f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let sum: f64 = points
        .iter()
        .map(|p| crate::linalg::log1p_exp(-p.label * margin(p)))
        .sum();
    sum / points.len() as f64
}

/// Area under the ROC curve of margin scores (rank-based; ties get half
/// credit). 0.5 = chance, 1.0 = perfect ranking.
pub fn auc(points: &[LabeledPoint], margin: impl Fn(&LabeledPoint) -> f64) -> f64 {
    let mut pos: Vec<f64> = Vec::new();
    let mut neg: Vec<f64> = Vec::new();
    for p in points {
        if p.label > 0.0 {
            pos.push(margin(p));
        } else {
            neg.push(margin(p));
        }
    }
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &s in &pos {
        for &t in &neg {
            if s > t {
                wins += 1.0;
            } else if s == t {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: f64, x: f64) -> LabeledPoint {
        LabeledPoint::new(label, vec![0], vec![x])
    }

    #[test]
    fn confusion_counts_and_derived_metrics() {
        let points = vec![pt(1.0, 1.0), pt(1.0, -1.0), pt(-1.0, 1.0), pt(-1.0, -1.0)];
        let c = Confusion::tally(&points, |p| p.values[0]);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn perfect_classifier_metrics() {
        let points = vec![pt(1.0, 2.0), pt(-1.0, -3.0), pt(1.0, 0.5)];
        let c = Confusion::tally(&points, |p| p.values[0]);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(auc(&points, |p| p.values[0]), 1.0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(log_loss(&[], |_| 0.0), 0.0);
        // Single-class set: AUC is defined as chance.
        let only_pos = vec![pt(1.0, 1.0)];
        assert_eq!(auc(&only_pos, |p| p.values[0]), 0.5);
    }

    #[test]
    fn auc_handles_ties_and_inversions() {
        let points = vec![pt(1.0, 1.0), pt(-1.0, 1.0)];
        assert_eq!(auc(&points, |p| p.values[0]), 0.5, "tie -> half credit");
        let inverted = vec![pt(1.0, -2.0), pt(-1.0, 2.0)];
        assert_eq!(auc(&inverted, |p| p.values[0]), 0.0);
    }

    #[test]
    fn log_loss_decreases_with_confidence() {
        let points = vec![pt(1.0, 1.0), pt(-1.0, -1.0)];
        let weak = log_loss(&points, |p| 0.1 * p.values[0]);
        let strong = log_loss(&points, |p| 5.0 * p.values[0]);
        assert!(strong < weak);
        assert!(strong > 0.0);
    }

    #[test]
    fn trained_model_beats_chance_on_auc() {
        use crate::logistic::LogisticRegression;
        use sparker_data::synth::ClassificationGen;
        use sparker_engine::cluster::LocalCluster;
        let cluster = LocalCluster::local(2, 2);
        let gen = ClassificationGen::new(61, 64, 8);
        let g = gen.clone();
        let data = cluster.generate(4, move |p| {
            g.partition(p, 4, 1200).into_iter().map(LabeledPoint::from).collect()
        });
        let (model, _) = LogisticRegression { iterations: 15, ..Default::default() }
            .train(&data, 64)
            .unwrap();
        let test: Vec<LabeledPoint> =
            (1200..1600).map(|i| LabeledPoint::from(gen.sample(i))).collect();
        let a = auc(&test, |p| p.margin(&model.weights));
        assert!(a > 0.72, "AUC {a}");
    }
}
