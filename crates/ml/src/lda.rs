//! LDA topic modelling (the paper's LDA workload, Table 3: `K = 100`).
//!
//! MLlib's online LDA aggregates per-document *sufficient statistics* — an
//! expected word–topic count matrix of `K × V` doubles — every iteration
//! through `treeAggregate`; for nytimes with `K = 100` that aggregator is
//! ≈ 82 MB, which is why LDA-N is the paper's flagship scalability workload
//! (Figures 3, 4, 18).
//!
//! Substitution note (see DESIGN.md): we run plain EM on a topic *mixture*
//! (one topic distribution per document, iterated to a soft assignment)
//! rather than full variational Bayes with digamma corrections. The
//! aggregator layout, its size, the per-document E-step structure, and the
//! driver-side M-step are identical in shape, which is everything this
//! paper's evaluation exercises; only the statistical estimator differs.

use sparker_data::rng::SplitMix64;
use sparker_data::synth::Document;
use sparker_engine::dataset::Dataset;
use sparker_engine::metrics::AggMetrics;
use sparker_engine::task::EngineResult;

use crate::aggregator::DenseAgg;
use crate::glm::{aggregate_dense, AggregationMode};

/// LDA hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LdaConfig {
    /// Number of topics (paper: 100).
    pub num_topics: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Outer EM iterations (paper: 40 on BIC, 15 on AWS).
    pub iterations: usize,
    /// Inner E-step iterations per document.
    pub inner_iterations: usize,
    /// Topic-word smoothing (M-step prior).
    pub eta: f64,
    /// Document-topic smoothing.
    pub alpha: f64,
    pub seed: u64,
    pub mode: AggregationMode,
}

impl LdaConfig {
    pub fn new(num_topics: usize, vocab: usize) -> Self {
        Self {
            num_topics,
            vocab,
            iterations: 10,
            inner_iterations: 5,
            eta: 0.01,
            alpha: 0.1,
            seed: 0x1DA,
            mode: AggregationMode::Tree,
        }
    }

    pub fn with_mode(mut self, mode: AggregationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Flattened aggregator length: K·V sstats + K totals + 2 counters.
    pub fn agg_len(&self) -> usize {
        self.num_topics * self.vocab + self.num_topics + 2
    }
}

/// Trained topic model.
#[derive(Debug, Clone)]
pub struct LdaModel {
    /// Row-major `K × V` topic-word weights (unnormalized).
    pub lambda: Vec<f64>,
    pub num_topics: usize,
    pub vocab: usize,
}

impl LdaModel {
    /// Seeded random initialization (symmetry breaking).
    pub fn init(cfg: &LdaConfig) -> Self {
        let mut rng = SplitMix64::new(cfg.seed);
        let lambda = (0..cfg.num_topics * cfg.vocab)
            .map(|_| 0.5 + rng.next_f64())
            .collect();
        Self { lambda, num_topics: cfg.num_topics, vocab: cfg.vocab }
    }

    /// Normalized topic-word distribution β (row-major K × V).
    pub fn beta(&self) -> Vec<f64> {
        let (k, v) = (self.num_topics, self.vocab);
        let mut beta = self.lambda.clone();
        for t in 0..k {
            let row = &mut beta[t * v..(t + 1) * v];
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
        beta
    }

    /// The `n` highest-weight words of `topic`.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<u32> {
        assert!(topic < self.num_topics);
        let row = &self.lambda[topic * self.vocab..(topic + 1) * self.vocab];
        let mut idx: Vec<u32> = (0..self.vocab as u32).collect();
        idx.sort_by(|&a, &b| {
            row[b as usize]
                .partial_cmp(&row[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(n);
        idx
    }

    /// Per-document topic distribution via the same E-step used in training.
    pub fn infer(&self, doc: &Document, inner_iterations: usize, alpha: f64) -> Vec<f64> {
        let beta = self.beta();
        let (theta, _, _) = e_step(doc, &beta, self.num_topics, self.vocab, inner_iterations, alpha);
        theta
    }
}

/// E-step for one document: returns (theta, per-word responsibilities as a
/// flat K-major accumulation closure input, log-likelihood).
fn e_step(
    doc: &Document,
    beta: &[f64],
    k: usize,
    v: usize,
    inner: usize,
    alpha: f64,
) -> (Vec<f64>, Vec<f64>, f64) {
    let mut theta = vec![1.0 / k as f64; k];
    let total: f64 = doc.words.iter().map(|&(_, c)| c as f64).sum();
    let mut resp = vec![0.0f64; k]; // scratch
    for _ in 0..inner {
        let mut new_theta = vec![alpha; k];
        for &(w, c) in &doc.words {
            let w = w as usize;
            if w >= v {
                continue;
            }
            let mut z = 0.0;
            for t in 0..k {
                resp[t] = theta[t] * beta[t * v + w];
                z += resp[t];
            }
            if z <= 0.0 {
                continue;
            }
            for t in 0..k {
                new_theta[t] += c as f64 * resp[t] / z;
            }
        }
        let norm: f64 = new_theta.iter().sum();
        for t in 0..k {
            theta[t] = new_theta[t] / norm;
        }
        let _ = total;
    }
    // Final responsibilities & log-likelihood.
    let mut loglik = 0.0;
    let mut flat_resp = vec![0.0f64; k]; // reused per word below by caller
    let _ = &mut flat_resp;
    for &(w, c) in &doc.words {
        let w = w as usize;
        if w >= v {
            continue;
        }
        let p: f64 = (0..k).map(|t| theta[t] * beta[t * v + w]).sum();
        if p > 0.0 {
            loglik += c as f64 * p.ln();
        }
    }
    (theta, resp, loglik)
}

/// Trains LDA; returns the model and per-iteration records (loss is the
/// negative log-likelihood per word).
pub fn train(
    data: &Dataset<Document>,
    cfg: LdaConfig,
) -> EngineResult<(LdaModel, Vec<LdaRecord>)> {
    let (k, v) = (cfg.num_topics, cfg.vocab);
    let mut model = LdaModel::init(&cfg);
    let mut records = Vec::with_capacity(cfg.iterations);

    for it in 0..cfg.iterations {
        let mut iter_span = sparker_obs::trace::span(sparker_obs::Layer::Ml, "ml.iteration");
        iter_span.arg("iteration", it as u64);
        // Broadcast the normalized topic-word matrix (the paper's huge
        // per-iteration payload: ~78 MiB at nytimes/K=100 scale).
        let bc = data.cluster().broadcast(crate::aggregator::DenseAgg::from(
            sparker_net::codec::F64Array(model.beta()),
        ))?;
        let inner = cfg.inner_iterations;
        let alpha = cfg.alpha;
        let dim = cfg.agg_len();
        let bc_task = bc.clone();
        let seq = move |mut acc: DenseAgg, doc: &Document| {
            let beta = bc_task.value();
            let beta = &beta.0;
            let a = &mut acc.0;
            let (theta, _, loglik) = e_step(doc, beta, k, v, inner, alpha);
            // Accumulate expected counts: sstats[t][w] += c * resp(t|w).
            for &(w, c) in &doc.words {
                let w = w as usize;
                if w >= v {
                    continue;
                }
                let mut z = 0.0;
                let mut r = vec![0.0; k];
                for (t, rt) in r.iter_mut().enumerate() {
                    *rt = theta[t] * beta[t * v + w];
                    z += *rt;
                }
                if z <= 0.0 {
                    continue;
                }
                for t in 0..k {
                    let inc = c as f64 * r[t] / z;
                    a[t * v + w] += inc;
                    a[k * v + t] += inc;
                }
            }
            a[k * v + k] += 1.0; // documents
            a[k * v + k + 1] += loglik;
            acc
        };
        let (agg, metrics) = aggregate_dense(data, dim, seq, cfg.mode)?;
        bc.destroy();

        // M-step at the driver: lambda = eta + expected counts.
        for i in 0..k * v {
            model.lambda[i] = cfg.eta + agg.0[i];
        }
        let docs = agg.0[k * v + k];
        let loglik = agg.0[k * v + k + 1];
        let words: f64 = agg.0[k * v..k * v + k].iter().sum();
        records.push(LdaRecord {
            iteration: it,
            neg_loglik_per_word: if words > 0.0 { -loglik / words } else { 0.0 },
            documents: docs as u64,
            metrics,
        });
    }
    Ok((model, records))
}

/// Per-iteration LDA record.
#[derive(Debug, Clone)]
pub struct LdaRecord {
    pub iteration: usize,
    pub neg_loglik_per_word: f64,
    pub documents: u64,
    pub metrics: AggMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_data::synth::CorpusGen;
    use sparker_engine::cluster::LocalCluster;

    fn corpus_dataset(
        cluster: &LocalCluster,
        gen: &CorpusGen,
        parts: usize,
        docs: u64,
    ) -> Dataset<Document> {
        let g = gen.clone();
        cluster.generate(parts, move |p| g.partition(p, parts, docs))
    }

    #[test]
    fn lda_likelihood_improves() {
        let cluster = LocalCluster::local(2, 2);
        let gen = CorpusGen::new(41, 200, 4, 60);
        let ds = corpus_dataset(&cluster, &gen, 4, 120);
        let cfg = LdaConfig { iterations: 6, ..LdaConfig::new(4, 200) };
        let (_, records) = train(&ds, cfg).unwrap();
        assert_eq!(records.len(), 6);
        assert_eq!(records[0].documents, 120);
        let first = records[0].neg_loglik_per_word;
        let last = records.last().unwrap().neg_loglik_per_word;
        assert!(last < first, "EM must improve likelihood: {first} -> {last}");
    }

    #[test]
    fn lda_recovers_topic_structure() {
        // The generator rotates topic heads across vocab slices; a trained
        // model's topics should concentrate on distinct slices.
        let cluster = LocalCluster::local(2, 2);
        let vocab = 400;
        let gen = CorpusGen::new(43, vocab, 4, 80);
        let ds = corpus_dataset(&cluster, &gen, 4, 200);
        let cfg = LdaConfig { iterations: 8, ..LdaConfig::new(4, vocab) };
        let (model, _) = train(&ds, cfg).unwrap();
        let mut slices = std::collections::HashSet::new();
        for t in 0..4 {
            let head = model.top_words(t, 5);
            slices.insert(head[0] / (vocab as u32 / 4));
        }
        assert!(slices.len() >= 2, "topics collapsed onto one vocab slice");
    }

    #[test]
    fn split_mode_matches_tree_mode() {
        let cluster = LocalCluster::local(3, 2);
        let gen = CorpusGen::new(47, 100, 3, 40);
        let ds = corpus_dataset(&cluster, &gen, 3, 60);
        let base = LdaConfig { iterations: 3, ..LdaConfig::new(3, 100) };
        let (m_tree, _) = train(&ds, base).unwrap();
        let (m_split, _) = train(&ds, base.with_mode(AggregationMode::split())).unwrap();
        for (a, b) in m_tree.lambda.iter().zip(&m_split.lambda) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn aggregator_size_matches_paper_formula() {
        // nytimes at paper scale: K=100, V=102,660 -> ~82 MB of doubles.
        let cfg = LdaConfig::new(100, 102_660);
        let bytes = cfg.agg_len() as u64 * 8;
        let mb = bytes as f64 / (1024.0 * 1024.0);
        assert!((78.0..79.0).contains(&mb), "{mb} MB");
    }

    #[test]
    fn infer_returns_probability_vector() {
        let cfg = LdaConfig::new(3, 50);
        let model = LdaModel::init(&cfg);
        let doc = Document { words: vec![(1, 2), (10, 1), (30, 4)] };
        let theta = model.infer(&doc, 5, 0.1);
        assert_eq!(theta.len(), 3);
        let sum: f64 = theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(theta.iter().all(|&t| t >= 0.0));
    }
}
