//! Gradient-descent driver for generalized linear models.
//!
//! Mirrors MLlib's `GradientDescent.runMiniBatchSGD`: each iteration
//! broadcasts the current weights, aggregates `(gradient, loss, count)` over
//! the dataset with `treeAggregate`, and updates the weights on the driver.
//! The single knob the paper adds — which aggregation implementation to use
//! — is [`AggregationMode`].


use sparker_collectives::segment::SumSegment;
use sparker_engine::dataset::Dataset;
use sparker_engine::metrics::AggMetrics;
use sparker_engine::ops::split_aggregate::SplitAggOpts;
use sparker_engine::ops::tree_aggregate::TreeAggOpts;
use sparker_engine::rdd::Data;
use sparker_engine::task::EngineResult;
use sparker_net::codec::F64Array;

use crate::aggregator::{concat_dense, merge_dense, merge_segments, split_dense, zeros, DenseAgg};
use crate::linalg::{log1p_exp, norm2, sparse_axpy};
use crate::point::LabeledPoint;

/// Which aggregation path a trainer uses — the paper's configuration switch.
#[derive(Debug, Clone, Copy, Default)]
pub enum AggregationMode {
    /// Vanilla Spark: `treeAggregate`.
    #[default]
    Tree,
    /// `treeAggregate` with In-Memory Merge in the compute stage.
    TreeImm,
    /// Sparker: split aggregation over the PDR.
    Split(SplitAggOpts),
}

impl AggregationMode {
    /// Sparker's default configuration (ring, cluster-default parallelism).
    pub fn split() -> Self {
        AggregationMode::Split(SplitAggOpts::default())
    }

    pub fn name(&self) -> &'static str {
        match self {
            AggregationMode::Tree => "tree",
            AggregationMode::TreeImm => "tree+imm",
            AggregationMode::Split(_) => "split",
        }
    }
}

/// Aggregates a dense-vector statistic over a dataset using the selected
/// aggregation implementation. The work-horse of every trainer here.
pub fn aggregate_dense<T: Data>(
    data: &Dataset<T>,
    dim: usize,
    seq: impl Fn(DenseAgg, &T) -> DenseAgg + Send + Sync + 'static,
    mode: AggregationMode,
) -> EngineResult<(DenseAgg, AggMetrics)> {
    match mode {
        AggregationMode::Tree | AggregationMode::TreeImm => {
            let imm = matches!(mode, AggregationMode::TreeImm);
            data.tree_aggregate(
                zeros(dim),
                seq,
                |mut a, b| {
                    merge_dense(&mut a, b);
                    a
                },
                TreeAggOpts { depth: 2, imm },
            )
        }
        AggregationMode::Split(opts) => {
            let (seg, metrics) = data.split_aggregate(
                zeros(dim),
                seq,
                merge_dense,
                split_dense,
                merge_segments,
                |segs: Vec<SumSegment>| SumSegment(concat_dense(segs).0),
                opts,
            )?;
            Ok((F64Array(seg.0), metrics))
        }
    }
}

/// Loss/gradient families (MLlib's `Gradient` subclasses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradientKind {
    /// Binary logistic loss, labels ±1.
    Logistic,
    /// Hinge loss (linear SVM), labels ±1.
    Hinge,
}

impl GradientKind {
    /// Adds sample `p`'s gradient into `acc[0..dim]` and its loss into
    /// `acc[dim]`; `acc[dim+1]` counts samples.
    pub fn accumulate(&self, w: &[f64], p: &LabeledPoint, acc: &mut [f64]) {
        let dim = w.len();
        let y = p.label;
        let margin = p.margin(w);
        match self {
            GradientKind::Logistic => {
                // d/dw log(1 + e^{-y w·x}) = -y σ(-y w·x) x
                let factor = -y / (1.0 + (y * margin).exp());
                sparse_axpy(factor, &p.indices, &p.values, &mut acc[..dim]);
                acc[dim] += log1p_exp(-y * margin);
            }
            GradientKind::Hinge => {
                if y * margin < 1.0 {
                    sparse_axpy(-y, &p.indices, &p.values, &mut acc[..dim]);
                    acc[dim] += 1.0 - y * margin;
                }
            }
        }
        acc[dim + 1] += 1.0;
    }
}

/// Gradient-descent hyperparameters (MLlib names).
#[derive(Debug, Clone, Copy)]
pub struct GdConfig {
    pub iterations: usize,
    pub step_size: f64,
    /// L2 regularization (paper: 0 for LR, 0.01 for SVM).
    pub reg_param: f64,
    /// Fraction of samples used per iteration (paper: 1.0 for SVM).
    pub mini_batch_fraction: f64,
    pub mode: AggregationMode,
}

impl Default for GdConfig {
    fn default() -> Self {
        Self {
            iterations: 10,
            step_size: 1.0,
            reg_param: 0.0,
            mini_batch_fraction: 1.0,
            mode: AggregationMode::Tree,
        }
    }
}

/// Per-iteration training record.
#[derive(Debug, Clone)]
pub struct TrainRecord {
    pub iteration: usize,
    /// Mean regularized loss over the (mini-)batch.
    pub loss: f64,
    /// Samples that contributed this iteration.
    pub count: u64,
    /// Aggregation decomposition for this iteration.
    pub metrics: AggMetrics,
}

/// Cheap deterministic per-sample hash for mini-batch selection (stable
/// across executors/backends; MLlib uses per-partition RNG sampling).
fn sample_hash(p: &LabeledPoint) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(p.label.to_bits());
    for &i in p.indices.iter().take(4) {
        mix(i as u64);
    }
    if let Some(v) = p.values.first() {
        mix(v.to_bits());
    }
    h
}

/// Runs gradient descent; returns final weights and per-iteration records.
pub fn run_gradient_descent(
    data: &Dataset<LabeledPoint>,
    dim: usize,
    kind: GradientKind,
    cfg: GdConfig,
) -> EngineResult<(Vec<f64>, Vec<TrainRecord>)> {
    assert!(dim >= 1 && cfg.iterations >= 1);
    assert!((0.0..=1.0).contains(&cfg.mini_batch_fraction) && cfg.mini_batch_fraction > 0.0);
    let mut w = vec![0.0f64; dim];
    let mut records = Vec::with_capacity(cfg.iterations);

    for it in 0..cfg.iterations {
        let mut iter_span = sparker_obs::trace::span(sparker_obs::Layer::Ml, "ml.iteration");
        iter_span.arg("iteration", it as u64);
        // Broadcast the model like MLlib does every iteration: the driver
        // serializes once, every executor receives and pins a replica, and
        // the fold reads the executor-local copy (see engine::broadcast).
        let bc = data.cluster().broadcast(F64Array(w.clone()))?;
        let weights = bc.clone();
        let frac = cfg.mini_batch_fraction;
        let threshold = (frac * u64::MAX as f64) as u64;
        let iter_seed = (it as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seq = move |mut acc: DenseAgg, p: &LabeledPoint| {
            let selected = frac >= 1.0 || (sample_hash(p) ^ iter_seed) <= threshold;
            if selected {
                kind.accumulate(&weights.value().0, p, &mut acc.0);
            }
            acc
        };
        let (agg, metrics) = aggregate_dense(data, dim + 2, seq, cfg.mode)?;
        bc.destroy();
        let grad = &agg.0[..dim];
        let loss_sum = agg.0[dim];
        let count = agg.0[dim + 1];

        let mut loss = 0.0;
        if count > 0.0 {
            // MLlib's simpleUpdater step size decays as 1/sqrt(iter).
            let step = cfg.step_size / ((it + 1) as f64).sqrt();
            for i in 0..dim {
                w[i] -= step * (grad[i] / count + cfg.reg_param * w[i]);
            }
            let n = norm2(&w);
            loss = loss_sum / count + 0.5 * cfg.reg_param * n * n;
        }
        records.push(TrainRecord { iteration: it, loss, count: count as u64, metrics });
    }
    Ok((w, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_engine::cluster::LocalCluster;

    fn toy_points() -> Vec<LabeledPoint> {
        // y = sign(x0 - x1): linearly separable 2-d data + intercept dim 2.
        let mut pts = Vec::new();
        for i in 0..200 {
            let a = (i % 20) as f64 / 10.0 - 1.0;
            let b = ((i * 7) % 20) as f64 / 10.0 - 1.0;
            let label = if a - b > 0.0 { 1.0 } else { -1.0 };
            pts.push(LabeledPoint::new(label, vec![0, 1, 2], vec![a, b, 1.0]));
        }
        pts
    }

    fn accuracy(w: &[f64], pts: &[LabeledPoint]) -> f64 {
        let ok = pts
            .iter()
            .filter(|p| (p.margin(w) > 0.0) == (p.label > 0.0))
            .count();
        ok as f64 / pts.len() as f64
    }

    #[test]
    fn logistic_gd_learns_separable_data() {
        let cluster = LocalCluster::local(2, 2);
        let pts = toy_points();
        let ds = cluster.parallelize(pts.clone(), 4);
        let cfg = GdConfig { iterations: 30, step_size: 1.0, ..Default::default() };
        let (w, records) = run_gradient_descent(&ds, 3, GradientKind::Logistic, cfg).unwrap();
        assert!(accuracy(&w, &pts) >= 0.95, "accuracy {}", accuracy(&w, &pts));
        assert!(records.last().unwrap().loss < records[0].loss, "loss must fall");
        assert_eq!(records.len(), 30);
        assert_eq!(records[0].count, 200);
    }

    #[test]
    fn all_modes_produce_identical_weights() {
        let cluster = LocalCluster::local(3, 2);
        let pts = toy_points();
        let ds = cluster.parallelize(pts, 6);
        let cfg = |mode| GdConfig { iterations: 5, mode, ..Default::default() };
        let (w_tree, _) =
            run_gradient_descent(&ds, 3, GradientKind::Logistic, cfg(AggregationMode::Tree)).unwrap();
        let (w_imm, _) =
            run_gradient_descent(&ds, 3, GradientKind::Logistic, cfg(AggregationMode::TreeImm))
                .unwrap();
        let (w_split, _) =
            run_gradient_descent(&ds, 3, GradientKind::Logistic, cfg(AggregationMode::split()))
                .unwrap();
        for i in 0..3 {
            assert!((w_tree[i] - w_imm[i]).abs() < 1e-9, "tree vs imm at {i}");
            assert!((w_tree[i] - w_split[i]).abs() < 1e-9, "tree vs split at {i}");
        }
    }

    #[test]
    fn hinge_gd_learns_separable_data() {
        let cluster = LocalCluster::local(2, 2);
        let pts = toy_points();
        let ds = cluster.parallelize(pts.clone(), 4);
        let cfg = GdConfig {
            iterations: 30,
            step_size: 1.0,
            reg_param: 0.01,
            ..Default::default()
        };
        let (w, _) = run_gradient_descent(&ds, 3, GradientKind::Hinge, cfg).unwrap();
        assert!(accuracy(&w, &pts) > 0.9, "accuracy {}", accuracy(&w, &pts));
    }

    #[test]
    fn mini_batch_fraction_reduces_count() {
        let cluster = LocalCluster::local(2, 2);
        let ds = cluster.parallelize(toy_points(), 4);
        let cfg = GdConfig { iterations: 2, mini_batch_fraction: 0.5, ..Default::default() };
        let (_, records) = run_gradient_descent(&ds, 3, GradientKind::Logistic, cfg).unwrap();
        for r in &records {
            assert!(r.count > 40 && r.count < 160, "batch size {} not ~50%", r.count);
        }
        // Different iterations select different subsets.
        assert_ne!(records[0].count, 0);
    }

    #[test]
    fn gradient_kinds_match_finite_differences() {
        let w = vec![0.3, -0.2, 0.1];
        let p = LabeledPoint::new(1.0, vec![0, 1, 2], vec![1.0, 2.0, -0.5]);
        for kind in [GradientKind::Logistic, GradientKind::Hinge] {
            let mut acc = vec![0.0; 5];
            kind.accumulate(&w, &p, &mut acc);
            let base_loss = acc[3];
            let _ = base_loss;
            // Finite-difference check on each coordinate of the gradient.
            let eps = 1e-6;
            for i in 0..3 {
                let mut wp = w.clone();
                wp[i] += eps;
                let mut accp = vec![0.0; 5];
                kind.accumulate(&wp, &p, &mut accp);
                let mut wm = w.clone();
                wm[i] -= eps;
                let mut accm = vec![0.0; 5];
                kind.accumulate(&wm, &p, &mut accm);
                let fd = (accp[3] - accm[3]) / (2.0 * eps);
                assert!(
                    (fd - acc[i]).abs() < 1e-4,
                    "{kind:?} grad[{i}]: analytic {} vs fd {fd}",
                    acc[i]
                );
            }
        }
    }
}
