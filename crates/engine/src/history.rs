//! Stage history — the engine's Spark history log.
//!
//! The paper's bottleneck analysis (§2.3) starts from Spark's history logs:
//! per-stage timings that let the authors attribute end-to-end time to
//! aggregation stages vs everything else (Figure 2) and split tree
//! aggregation into its compute and reduce stages (Figures 3–4). The engine
//! records the same information for every stage it runs, so the same
//! analysis can be replayed against this reproduction's real executions.

use std::time::{Duration, Instant};

use sparker_net::sync::Mutex;

/// One completed stage (including all resubmissions).
#[derive(Debug, Clone, PartialEq)]
pub struct StageEvent {
    /// Stage label, e.g. `tree-compute-op7`, `split-ring-op9`, `broadcast-op3`.
    pub label: String,
    /// Tasks in one submission of the stage.
    pub tasks: u32,
    /// Task attempts across retries/resubmissions.
    pub attempts: u32,
    /// Wall time from submission to last result.
    pub wall: Duration,
    /// Offset from cluster start when the stage completed.
    pub completed_at: Duration,
}

impl StageEvent {
    /// The stage kind: the label with its `-op<N>[...]` suffix stripped
    /// (also drops shuffle level suffixes like `-op7-l1`).
    pub fn kind(&self) -> &str {
        match self.label.rfind("-op") {
            Some(idx)
                if self.label[idx + 3..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit()) =>
            {
                &self.label[..idx]
            }
            _ => &self.label,
        }
    }
}

/// Append-only per-cluster stage log.
pub struct History {
    start: Instant,
    events: Mutex<Vec<StageEvent>>,
}

impl Default for History {
    fn default() -> Self {
        Self::new()
    }
}

impl History {
    pub fn new() -> Self {
        Self { start: Instant::now(), events: Mutex::new(Vec::new()) }
    }

    /// Records one completed stage.
    pub fn record(&self, label: &str, tasks: u32, attempts: u32, wall: Duration) {
        self.events.lock().push(StageEvent {
            label: label.to_string(),
            tasks,
            attempts,
            wall,
            completed_at: self.start.elapsed(),
        });
    }

    /// A copy of all events so far, in completion order.
    pub fn snapshot(&self) -> Vec<StageEvent> {
        self.events.lock().clone()
    }

    /// Total wall time of stages whose label starts with `prefix`.
    pub fn time_with_prefix(&self, prefix: &str) -> Duration {
        self.events
            .lock()
            .iter()
            .filter(|e| e.label.starts_with(prefix))
            .map(|e| e.wall)
            .sum()
    }

    /// Total stage wall time (stages may overlap driver work; this is the
    /// paper's stage-sum denominator, not end-to-end time).
    pub fn total_stage_time(&self) -> Duration {
        self.events.lock().iter().map(|e| e.wall).sum()
    }

    /// The fraction of stage time spent in aggregation stages (compute,
    /// shuffle, ring, final) — the statistic behind Figure 2.
    pub fn aggregation_share(&self) -> f64 {
        let total = self.total_stage_time().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let agg: f64 = self
            .events
            .lock()
            .iter()
            .filter(|e| {
                let k = e.kind();
                k.starts_with("tree-") || k.starts_with("split-") || k.starts_with("allreduce-")
            })
            .map(|e| e.wall.as_secs_f64())
            .sum();
        agg / total
    }

    /// Per-kind (label sans op ids) totals, sorted by descending time.
    pub fn summary(&self) -> Vec<(String, Duration, u32)> {
        let mut map: std::collections::BTreeMap<String, (Duration, u32)> = Default::default();
        for e in self.events.lock().iter() {
            let entry = map.entry(e.kind().to_string()).or_default();
            entry.0 += e.wall;
            entry.1 += e.attempts;
        }
        let mut out: Vec<(String, Duration, u32)> =
            map.into_iter().map(|(k, (d, a))| (k, d, a)).collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// Drops all recorded events (between benchmark phases).
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let h = History::new();
        h.record("tree-compute-op1", 4, 5, Duration::from_millis(10));
        h.record("tree-final-op1", 2, 2, Duration::from_millis(5));
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tasks, 4);
        assert_eq!(snap[0].attempts, 5);
        assert!(snap[1].completed_at >= snap[0].completed_at);
    }

    #[test]
    fn kind_strips_op_suffixes() {
        let mk = |label: &str| StageEvent {
            label: label.into(),
            tasks: 1,
            attempts: 1,
            wall: Duration::ZERO,
            completed_at: Duration::ZERO,
        };
        assert_eq!(mk("tree-compute-op12").kind(), "tree-compute");
        assert_eq!(mk("tree-shuffle-op7-l1").kind(), "tree-shuffle");
        assert_eq!(mk("split-ring-op3").kind(), "split-ring");
        assert_eq!(mk("collect").kind(), "collect");
        assert_eq!(mk("my-opaque-label").kind(), "my-opaque-label");
    }

    #[test]
    fn aggregation_share_counts_agg_stages_only() {
        let h = History::new();
        h.record("count", 4, 4, Duration::from_millis(30));
        h.record("tree-compute-op1", 4, 4, Duration::from_millis(60));
        h.record("tree-final-op1", 2, 2, Duration::from_millis(10));
        let share = h.aggregation_share();
        assert!((share - 0.7).abs() < 1e-9, "{share}");
    }

    #[test]
    fn summary_groups_and_sorts() {
        let h = History::new();
        h.record("split-imm-op1", 4, 4, Duration::from_millis(5));
        h.record("split-imm-op2", 4, 4, Duration::from_millis(5));
        h.record("split-ring-op1", 3, 3, Duration::from_millis(40));
        let s = h.summary();
        assert_eq!(s[0].0, "split-ring");
        assert_eq!(s[1].0, "split-imm");
        assert_eq!(s[1].1, Duration::from_millis(10));
        assert_eq!(s[1].2, 8);
    }

    #[test]
    fn clear_empties_the_log() {
        let h = History::new();
        h.record("x", 1, 1, Duration::from_millis(1));
        h.clear();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.aggregation_share(), 0.0);
    }
}
