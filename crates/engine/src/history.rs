//! Stage history — the engine's Spark history log.
//!
//! The paper's bottleneck analysis (§2.3) starts from Spark's history logs:
//! per-stage timings that let the authors attribute end-to-end time to
//! aggregation stages vs everything else (Figure 2) and split tree
//! aggregation into its compute and reduce stages (Figures 3–4). The engine
//! records the same information for every stage it runs, so the same
//! analysis can be replayed against this reproduction's real executions.
//!
//! Since the observability PR, `History` is a **derived view over the
//! trace**: each recorded stage is a `Stage`-layer span in the
//! [`sparker_obs`] global sink, tagged with this history's scope id, and
//! every query here re-derives from those spans. The same spans appear in
//! exported Chrome traces and in [`sparker_obs::export::stage_breakdown`] —
//! one source of truth for both the programmatic and the exported views.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sparker_obs::{trace, Layer};

/// One completed stage (including all resubmissions).
#[derive(Debug, Clone, PartialEq)]
pub struct StageEvent {
    /// Stage label, e.g. `tree-compute-op7`, `split-ring-op9`, `broadcast-op3`.
    pub label: String,
    /// Tasks in one submission of the stage.
    pub tasks: u32,
    /// Task attempts across retries/resubmissions.
    pub attempts: u32,
    /// Wall time from submission to last result.
    pub wall: Duration,
    /// Offset from cluster start when the stage completed.
    pub completed_at: Duration,
    /// Scheduler job the stage ran under; 0 outside the scheduler (the
    /// single-job default), so concurrent-job traces stay attributable.
    pub job_id: u64,
}

impl StageEvent {
    /// The stage kind: the label truncated at the first `-op` that is
    /// immediately followed by a digit, which also drops any trailing
    /// suffixes after the op id (shuffle levels, rounds):
    ///
    /// * `tree-shuffle-op7-l1` → `tree-shuffle`
    /// * `split-ring-op9-l2-r1` → `split-ring` (multi-suffix)
    /// * `collect` → `collect` (no `-op` marker)
    /// * `weird-op` → `weird-op` (trailing `-op` without digits is not a
    ///   marker)
    /// * `x-op-y-op7-l1` → `x-op-y` (first digit-followed marker wins)
    ///
    /// Delegates to [`sparker_obs::export::stage_kind`], the same
    /// classifier the trace exporters use for the Fig 2 breakdown.
    pub fn kind(&self) -> &str {
        sparker_obs::export::stage_kind(&self.label)
    }
}

/// Append-only per-cluster stage log, stored as `Stage`-layer spans in the
/// process trace sink under this history's scope.
pub struct History {
    scope: u64,
    /// Cluster start, as nanoseconds since the process trace epoch.
    start_ns: u64,
    /// Job id stamped onto stage records ([`StageEvent::job_id`]). Set for
    /// the duration of an op while the cluster action lock is held, so every
    /// record between set and reset belongs to that job.
    current_job: AtomicU64,
}

impl Default for History {
    fn default() -> Self {
        Self::new()
    }
}

impl History {
    pub fn new() -> Self {
        Self { scope: trace::next_scope(), start_ns: trace::now_ns(), current_job: AtomicU64::new(0) }
    }

    /// Sets the job id stamped onto subsequent stage records (0 = no job).
    /// Ops call this right after taking the cluster action lock and reset it
    /// to 0 before releasing, so the stamp can't bleed across jobs.
    pub fn set_current_job(&self, job_id: u64) {
        self.current_job.store(job_id, Ordering::Relaxed);
    }

    /// The job id currently stamped onto stage records.
    pub fn current_job(&self) -> u64 {
        self.current_job.load(Ordering::Relaxed)
    }

    /// The trace scope id this history's spans are tagged with. `run_stage`
    /// uses it to parent task spans, and exporters can use it to isolate
    /// one cluster's records.
    pub fn scope(&self) -> u64 {
        self.scope
    }

    /// Records one completed stage (back-dating the span start by `wall`).
    pub fn record(&self, label: &str, tasks: u32, attempts: u32, wall: Duration) {
        trace::record_manual(
            self.scope,
            Layer::Stage,
            label,
            wall,
            &[
                ("tasks", tasks as u64),
                ("attempts", attempts as u64),
                ("job", self.current_job()),
            ],
        );
    }

    fn event_of(&self, r: &trace::SpanRecord) -> StageEvent {
        StageEvent {
            label: r.name.clone(),
            tasks: r.arg("tasks").unwrap_or(0) as u32,
            attempts: r.arg("attempts").unwrap_or(0) as u32,
            wall: Duration::from_nanos(r.dur_ns),
            completed_at: Duration::from_nanos(r.end_ns().saturating_sub(self.start_ns)),
            job_id: r.arg("job").unwrap_or(0),
        }
    }

    /// A copy of all events so far, in completion order.
    pub fn snapshot(&self) -> Vec<StageEvent> {
        trace::snapshot_scope(self.scope)
            .iter()
            .filter(|r| r.layer == Layer::Stage)
            .map(|r| self.event_of(r))
            .collect()
    }

    /// Total wall time of stages whose label starts with `prefix`.
    pub fn time_with_prefix(&self, prefix: &str) -> Duration {
        self.snapshot().iter().filter(|e| e.label.starts_with(prefix)).map(|e| e.wall).sum()
    }

    /// Total stage wall time (stages may overlap driver work; this is the
    /// paper's stage-sum denominator, not end-to-end time).
    pub fn total_stage_time(&self) -> Duration {
        self.snapshot().iter().map(|e| e.wall).sum()
    }

    /// The fraction of stage time spent in aggregation stages (compute,
    /// shuffle, ring, final) — the statistic behind Figure 2. Classification
    /// is shared with [`sparker_obs::export::is_aggregation_kind`].
    pub fn aggregation_share(&self) -> f64 {
        let events = self.snapshot();
        let total: f64 = events.iter().map(|e| e.wall.as_secs_f64()).sum();
        if total == 0.0 {
            return 0.0;
        }
        let agg: f64 = events
            .iter()
            .filter(|e| sparker_obs::export::is_aggregation_kind(e.kind()))
            .map(|e| e.wall.as_secs_f64())
            .sum();
        agg / total
    }

    /// Per-kind (label sans op ids) totals, sorted by descending time.
    pub fn summary(&self) -> Vec<(String, Duration, u32)> {
        let mut map: std::collections::BTreeMap<String, (Duration, u32)> = Default::default();
        for e in self.snapshot() {
            let entry = map.entry(e.kind().to_string()).or_default();
            entry.0 += e.wall;
            entry.1 += e.attempts;
        }
        let mut out: Vec<(String, Duration, u32)> =
            map.into_iter().map(|(k, (d, a))| (k, d, a)).collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.1));
        out
    }

    /// Drops all recorded events (between benchmark phases).
    pub fn clear(&self) {
        trace::clear_scope(self.scope);
    }
}

impl Drop for History {
    /// A history owns its scope's spans; reclaim them so long-lived
    /// processes (benchmark sweeps creating many clusters) don't accumulate
    /// dead clusters' stage records in the global sink.
    fn drop(&mut self) {
        trace::clear_scope(self.scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let h = History::new();
        h.record("tree-compute-op1", 4, 5, Duration::from_millis(10));
        h.record("tree-final-op1", 2, 2, Duration::from_millis(5));
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tasks, 4);
        assert_eq!(snap[0].attempts, 5);
        assert!(snap[1].completed_at >= snap[0].completed_at);
    }

    #[test]
    fn kind_strips_op_suffixes() {
        let mk = |label: &str| StageEvent {
            label: label.into(),
            tasks: 1,
            attempts: 1,
            wall: Duration::ZERO,
            completed_at: Duration::ZERO,
            job_id: 0,
        };
        assert_eq!(mk("tree-compute-op12").kind(), "tree-compute");
        assert_eq!(mk("tree-shuffle-op7-l1").kind(), "tree-shuffle");
        assert_eq!(mk("split-ring-op3").kind(), "split-ring");
        assert_eq!(mk("collect").kind(), "collect");
        assert_eq!(mk("my-opaque-label").kind(), "my-opaque-label");
    }

    #[test]
    fn kind_handles_multi_suffix_and_degenerate_labels() {
        let mk = |label: &str| StageEvent {
            label: label.into(),
            tasks: 1,
            attempts: 1,
            wall: Duration::ZERO,
            completed_at: Duration::ZERO,
            job_id: 0,
        };
        // Multi-suffix: everything after the op marker goes, not just the
        // last dash-group.
        assert_eq!(mk("split-ring-op9-l2-r1").kind(), "split-ring");
        // No -op at all.
        assert_eq!(mk("broadcast").kind(), "broadcast");
        // Trailing -op with no digits is part of the kind, not a marker.
        assert_eq!(mk("weird-op").kind(), "weird-op");
        assert_eq!(mk("trailing-op-").kind(), "trailing-op-");
        // A non-marker -op followed later by a real marker: first real
        // marker wins, the literal -op- stays in the kind.
        assert_eq!(mk("x-op-y-op7-l1").kind(), "x-op-y");
    }

    #[test]
    fn aggregation_share_counts_agg_stages_only() {
        let h = History::new();
        h.record("count", 4, 4, Duration::from_millis(30));
        h.record("tree-compute-op1", 4, 4, Duration::from_millis(60));
        h.record("tree-final-op1", 2, 2, Duration::from_millis(10));
        let share = h.aggregation_share();
        assert!((share - 0.7).abs() < 1e-9, "{share}");
    }

    #[test]
    fn summary_groups_and_sorts() {
        let h = History::new();
        h.record("split-imm-op1", 4, 4, Duration::from_millis(5));
        h.record("split-imm-op2", 4, 4, Duration::from_millis(5));
        h.record("split-ring-op1", 3, 3, Duration::from_millis(40));
        let s = h.summary();
        assert_eq!(s[0].0, "split-ring");
        assert_eq!(s[1].0, "split-imm");
        assert_eq!(s[1].1, Duration::from_millis(10));
        assert_eq!(s[1].2, 8);
    }

    #[test]
    fn current_job_stamps_records_and_resets() {
        let h = History::new();
        h.record("split-imm-op1", 1, 1, Duration::from_millis(1));
        h.set_current_job(9);
        h.record("split-ring-op1", 1, 1, Duration::from_millis(1));
        h.set_current_job(0);
        h.record("split-imm-op2", 1, 1, Duration::from_millis(1));
        let snap = h.snapshot();
        assert_eq!(snap.iter().map(|e| e.job_id).collect::<Vec<_>>(), vec![0, 9, 0]);
    }

    #[test]
    fn clear_empties_the_log() {
        let h = History::new();
        h.record("x", 1, 1, Duration::from_millis(1));
        h.clear();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.aggregation_share(), 0.0);
    }

    #[test]
    fn histories_are_isolated_and_reclaimed_on_drop() {
        let a = History::new();
        let b = History::new();
        a.record("a-stage", 1, 1, Duration::from_millis(1));
        b.record("b-stage", 1, 1, Duration::from_millis(2));
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(a.snapshot()[0].label, "a-stage");
        assert_eq!(b.snapshot()[0].label, "b-stage");
        let scope = a.scope();
        drop(a);
        assert!(
            sparker_obs::trace::snapshot_scope(scope).is_empty(),
            "dropped history left spans in the sink"
        );
        assert_eq!(b.snapshot().len(), 1, "sibling history unaffected");
    }

    #[test]
    fn events_are_visible_to_trace_exporters() {
        let h = History::new();
        h.record("tree-compute-op4", 2, 2, Duration::from_millis(8));
        let spans = sparker_obs::trace::snapshot_scope(h.scope());
        let b = sparker_obs::export::stage_breakdown(&spans);
        assert_eq!(b.rows.len(), 1);
        assert_eq!(b.rows[0].kind, "tree-compute");
        assert!(b.rows[0].aggregation);
        assert!((b.aggregation_share() - 1.0).abs() < 1e-9);
    }
}
