//! Per-executor block store (MEMORY_ONLY caching).
//!
//! The engine's equivalent of Spark's BlockManager *storage* role: cached
//! RDD partitions are materialized here keyed by `(rdd, partition)`. The
//! paper's aggregation micro-benchmark (§5.2.3) caches its input RDD with
//! `MEMORY_ONLY` and pre-loads it with a `count` action so aggregation
//! measurements exclude input generation — our benches do the same through
//! this store.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use sparker_net::sync::RwLock;

use crate::rdd::RddId;

/// Key of a cached partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    pub rdd: RddId,
    pub partition: usize,
}

/// Type-erased cached partition: an `Arc<Vec<T>>` behind `Any`.
type Block = Arc<dyn Any + Send + Sync>;

/// Executor-local cache of materialized partitions.
#[derive(Default)]
pub struct BlockStore {
    blocks: RwLock<HashMap<BlockKey, Block>>,
}

impl BlockStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches the cached partition, or computes and caches it.
    ///
    /// Concurrent callers may both compute; the first insert wins and both
    /// return the same data (compute must be deterministic, which RDD
    /// lineage guarantees).
    pub fn get_or_compute<T, F>(&self, key: BlockKey, compute: F) -> Arc<Vec<T>>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Vec<T>,
    {
        if let Some(b) = self.blocks.read().get(&key) {
            return b.clone().downcast::<Vec<T>>().expect("block type mismatch");
        }
        let data = Arc::new(compute());
        let mut w = self.blocks.write();
        let entry = w.entry(key).or_insert_with(|| data.clone());
        entry.clone().downcast::<Vec<T>>().expect("block type mismatch")
    }

    /// Returns the cached partition if present.
    pub fn get<T: Send + Sync + 'static>(&self, key: BlockKey) -> Option<Arc<Vec<T>>> {
        self.blocks
            .read()
            .get(&key)
            .map(|b| b.clone().downcast::<Vec<T>>().expect("block type mismatch"))
    }

    /// Drops every partition of `rdd` (unpersist).
    pub fn evict_rdd(&self, rdd: RddId) {
        self.blocks.write().retain(|k, _| k.rdd != rdd);
    }

    /// Number of cached partitions on this executor.
    pub fn len(&self) -> usize {
        self.blocks.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: BlockKey = BlockKey { rdd: RddId(1), partition: 0 };

    #[test]
    fn computes_once_then_caches() {
        let store = BlockStore::new();
        let first = store.get_or_compute(KEY, || vec![1u32, 2, 3]);
        let second = store.get_or_compute(KEY, || panic!("must not recompute"));
        assert_eq!(*first, vec![1, 2, 3]);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn get_returns_none_when_absent() {
        let store = BlockStore::new();
        assert!(store.get::<u32>(KEY).is_none());
    }

    #[test]
    fn evict_rdd_clears_only_that_rdd() {
        let store = BlockStore::new();
        store.get_or_compute(BlockKey { rdd: RddId(1), partition: 0 }, || vec![1u8]);
        store.get_or_compute(BlockKey { rdd: RddId(1), partition: 1 }, || vec![2u8]);
        store.get_or_compute(BlockKey { rdd: RddId(2), partition: 0 }, || vec![3u8]);
        store.evict_rdd(RddId(1));
        assert_eq!(store.len(), 1);
        assert!(store.get::<u8>(BlockKey { rdd: RddId(2), partition: 0 }).is_some());
    }

    #[test]
    fn concurrent_get_or_compute_agrees() {
        let store = Arc::new(BlockStore::new());
        let results: Vec<Arc<Vec<u64>>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let store = store.clone();
                    s.spawn(move || store.get_or_compute(KEY, || vec![42u64; 100]))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in &results {
            assert!(Arc::ptr_eq(r, &results[0]));
        }
    }

    #[test]
    #[should_panic(expected = "block type mismatch")]
    fn wrong_type_panics() {
        let store = BlockStore::new();
        store.get_or_compute(KEY, || vec![1u32]);
        store.get::<u64>(KEY);
    }
}
