//! The RDD abstraction.
//!
//! An [`Rdd`] is a lazily-evaluated, partitioned dataset with deterministic
//! lineage: `compute(split)` must always produce the same items for the same
//! partition, which is what makes task retry and stage resubmission sound
//! (the paper's fault-tolerance argument in §3.2 leans on exactly this).
//!
//! Items only need `Clone + Send + Sync` — they never cross executor
//! boundaries. Aggregation *results* do cross, and those are constrained to
//! `Payload` at the op layer instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sparker_net::topology::ExecutorId;

use crate::blockstore::BlockStore;
use crate::objects::MutableObjectManager;

/// Marker for types an RDD can hold.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Globally unique RDD identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RddId(pub u64);

static NEXT_RDD_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh [`RddId`]; process-wide monotonic.
pub fn next_rdd_id() -> RddId {
    RddId(NEXT_RDD_ID.fetch_add(1, Ordering::Relaxed))
}

/// Execution context handed to [`Rdd::compute`] — the executor-local
/// services a task may touch.
#[derive(Clone)]
pub struct TaskContext {
    pub executor: ExecutorId,
    pub blocks: Arc<BlockStore>,
    pub objects: Arc<MutableObjectManager>,
}

impl TaskContext {
    /// Standalone context for unit tests that evaluate RDDs off-cluster.
    pub fn standalone() -> Self {
        Self {
            executor: ExecutorId(0),
            blocks: Arc::new(BlockStore::new()),
            objects: Arc::new(MutableObjectManager::new()),
        }
    }
}

thread_local! {
    static CURRENT_CTX: std::cell::RefCell<Option<TaskContext>> =
        const { std::cell::RefCell::new(None) };
}

/// The task context of the current thread, if it is an executor worker
/// running a task — the engine's `TaskContext.get()` (how Spark code looks
/// up its executor without threading a handle through every closure).
pub fn current_task_context() -> Option<TaskContext> {
    CURRENT_CTX.with(|c| c.borrow().clone())
}

/// Installs `ctx` as the current thread's task context for the duration of
/// `f` (worker-loop internal; public for custom executors and tests).
pub fn with_task_context<R>(ctx: &TaskContext, f: impl FnOnce() -> R) -> R {
    CURRENT_CTX.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    // Clear even on unwind so a panicking task cannot leak its context
    // into the next task on this worker.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            CURRENT_CTX.with(|c| *c.borrow_mut() = None);
        }
    }
    let _reset = Reset;
    f()
}

/// A partitioned, lazily-computed dataset.
pub trait Rdd: Send + Sync + 'static {
    type Item: Data;

    /// Stable identity (drives cache keys).
    fn id(&self) -> RddId;

    /// Number of partitions.
    fn num_partitions(&self) -> usize;

    /// Computes one partition. Must be deterministic per `(id, split)`.
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = Self::Item> + Send>;

    /// Pins `split` to a specific executor.
    ///
    /// `None` (the default) lets the scheduler place the task by its
    /// round-robin owner. The paper's `SpawnRDD` (§4.3) is exactly an RDD
    /// that answers `Some` for every partition: "given a closure describing
    /// the task and a list of executor ids describing the task locations,
    /// SpawnRDD will launch tasks exactly according to the executor list."
    fn preferred_executor(&self, _split: usize) -> Option<ExecutorId> {
        None
    }
}

/// Shared-ownership RDD handle used throughout the engine.
pub type RddRef<T> = Arc<dyn Rdd<Item = T>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdd_ids_are_unique_and_monotonic() {
        let a = next_rdd_id();
        let b = next_rdd_id();
        assert!(b > a);
    }

    #[test]
    fn standalone_context_is_usable() {
        let ctx = TaskContext::standalone();
        assert_eq!(ctx.executor, ExecutorId(0));
        assert!(ctx.blocks.is_empty());
        assert!(ctx.objects.is_empty());
    }
}
