//! Multi-process split aggregation: the SPMD driver/executor protocol that
//! runs the full collective stack across OS processes over real TCP.
//!
//! The in-process engine ([`crate::cluster`]) models executors as threads;
//! this module is the production-shaped variant the paper actually ships:
//! every executor is its own process, joined to the driver through
//! [`sparker_net::tcp::rendezvous`], with two planes of traffic:
//!
//! * **control plane** — the blocking driver↔executor socket from
//!   rendezvous. The driver dispatches [`DriverMsg::Run`] jobs carrying a
//!   full [`JobSpec`]; executors answer [`ExecMsg::JobOk`] (their owned,
//!   fully-reduced segments) or [`ExecMsg::JobErr`].
//! * **data plane** — the [`sparker_net::tcp::TcpTransport`] peer mesh,
//!   where the chunk-pipelined ring reduce-scatter runs, epoch-fenced
//!   exactly as in-process ([`sparker_collectives::RingComm`]).
//!
//! # Recovery semantics (DESIGN.md §5h)
//!
//! Partition data is a *pure function* of `(seed, part)` — the multi-process
//! equivalent of RDD lineage: any executor can recompute any partition.
//! Recovery is layered, cheapest first:
//!
//! 1. **Reconnection** (inside the transport): a transient socket failure is
//!    re-dialed with backoff; the job attempt may fail, but the *gang retry*
//!    runs over the healed link and the epoch fence discards stale frames.
//!    The membership view does not change.
//! 2. **Ring over survivors**: when an executor is confirmed dead (its
//!    control socket dropped), the driver bumps the generation of its
//!    [`MembershipView`], and the next attempt runs the *ring* over the
//!    survivors — re-ranked by view position, same lineage recomputation,
//!    still bit-exact. The tree fallback is no longer the first response to
//!    death.
//! 3. **Tree fallback** (last resort): only when ring attempts are
//!    exhausted, survivors ship whole aggregators up the control plane and
//!    the driver merges pairwise — slower, but exact.
//!
//! A restarted executor re-joins through rendezvous between jobs
//! ([`MultiProcDriver::try_readmit`]): it takes over the vacated rank, dials
//! the live lower ranks itself, and the driver tells live higher ranks to
//! dial it ([`DriverMsg::Admit`]); the next view includes it again.
//!
//! Fault injection for all paths is built into [`JobSpec`] (`fail_rank`,
//! `die_rank`, `drop_rank`/`drop_peer`) so `launch_cluster`/`chaos_cluster`
//! can prove them against genuinely killed, stopped, and disconnected
//! processes.
//!
//! All job values are integer-valued `f64`s, so sums are exact in any merge
//! order and every path (ring, survivor ring, tree, driver-side [`oracle`])
//! must agree **bit-for-bit** — the acceptance check is exact equality, not
//! tolerance.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sparker_collectives::hierarchical::hierarchical_reduce_scatter_chunked_by;
use sparker_collectives::ring::{ring_reduce_scatter_chunked_by, OwnedSegment};
use sparker_collectives::RingComm;
use sparker_net::codec::{Decoder, Encoder, F64Array, Payload};
use sparker_net::error::{NetError, NetResult};
use sparker_net::tcp::rendezvous::{self, ControlConn, Coordinator, Joined};
use sparker_net::tcp::{frame, TcpConfig};
use sparker_net::topology::{ExecutorId, ExecutorInfo, RingOrder, RingTopology};
use sparker_net::transport::Transport;
use sparker_net::{pool, ByteBuf};
use sparker_obs::metrics::{self, Counter, MetricValue};
use sparker_sparse::DenseOrSparse;

use crate::task::{EngineError, EngineResult};

/// Exit code of an executor killed by `die_rank` fault injection, so the
/// launcher can tell an injected death from a crash.
pub const KILLED_EXIT_CODE: i32 = 13;

/// Sentinel for "no rank" in the fault-injection fields.
pub const NO_RANK: u32 = u32::MAX;

/// [`JobSpec::algo`]: flat/chunked ring reduce-scatter (the default).
pub const ALGO_RING: u8 = 0;
/// [`JobSpec::algo`]: two-level hierarchical reduce-scatter — intra-node
/// fold to node leaders, chunked ring over the leaders-only sub-ring.
pub const ALGO_HIER: u8 = 1;

fn counter_cached(cell: &'static OnceLock<Arc<Counter>>, name: &'static str) -> &'static Arc<Counter> {
    cell.get_or_init(|| metrics::counter(name))
}

/// `multiproc.view_changes`: membership views published by the driver.
fn count_view_change() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    counter_cached(&C, "multiproc.view_changes").add(1);
}

/// `multiproc.ring_retries`: gang attempts beyond the first.
fn count_ring_retry() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    counter_cached(&C, "multiproc.ring_retries").add(1);
}

/// `multiproc.fallbacks`: jobs that degraded to the tree fallback.
fn count_fallback() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    counter_cached(&C, "multiproc.fallbacks").add(1);
}

/// `multiproc.readmissions`: executors re-admitted to a vacated rank.
fn count_readmission() {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    counter_cached(&C, "multiproc.readmissions").add(1);
}

/// A generation-numbered membership view: which ranks participate in a job.
///
/// The driver owns the view; it bumps `generation` whenever the member set
/// changes (death or re-admission) and ships the view inside every
/// [`JobSpec`]. Executors build the ring over `members` in order — their
/// ring position is their index in this list, while transport addressing
/// keeps using absolute ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// Monotonic view number (0 = the founding full mesh).
    pub generation: u64,
    /// Participating absolute ranks, ascending.
    pub members: Vec<u32>,
}

impl MembershipView {
    /// The founding view: all `n` ranks, generation 0.
    pub fn full(n: usize) -> Self {
        Self { generation: 0, members: (0..n as u32).collect() }
    }
}

impl Payload for MembershipView {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.generation);
        enc.put_u32_slice(&self.members);
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        Ok(Self { generation: dec.get_u64()?, members: dec.get_u32_vec()? })
    }

    fn size_hint(&self) -> usize {
        8 + 8 + 4 * self.members.len()
    }
}

/// One split-aggregate job, shipped whole to every executor.
///
/// Data is defined by `(seed, dim, density, total_parts)` through
/// [`part_vector`]; `assigned[rank]` lists the partitions each rank
/// aggregates locally before the ring runs. `view` names the ranks that
/// participate (the ring is formed over them in order).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Collective op id — the `op` half of the epoch fence.
    pub id: u64,
    /// Reduce [`DenseOrSparse`] segments instead of dense [`F64Array`]s.
    pub sparse: bool,
    /// Density threshold for the adaptive segments (sparse jobs).
    pub threshold: f64,
    /// Seed defining the dataset.
    pub seed: u64,
    /// Aggregator length.
    pub dim: usize,
    /// Fraction of `dim` touched per partition (1.0 = dense).
    pub density: f64,
    /// Number of partitions in the dataset.
    pub total_parts: usize,
    /// Ring channels (the paper's parallelism `P`).
    pub parallelism: usize,
    /// Pipeline chunks per ring slot (`C`).
    pub chunks: usize,
    /// Reduction algorithm: [`ALGO_RING`] (flat/chunked ring, the default)
    /// or [`ALGO_HIER`] (two-level hierarchical reduce-scatter).
    pub algo: u8,
    /// Emulated node count for [`ALGO_HIER`]: members are blocked into this
    /// many host groups by ring position (deterministic across view
    /// changes). 0 keeps the legacy layout where every rank is its own node.
    pub nodes: usize,
    /// Gang attempt — the `attempt` half of the epoch fence.
    pub attempt: u32,
    /// Epoch namespace ([`sparker_net::epoch::namespaced`]) folded into the
    /// attempt word on the wire, so jobs interleaved by concurrent
    /// submitters can never accept each other's collective frames. 0 is the
    /// single-job default.
    pub epoch_ns: u32,
    /// Per-receive deadline inside the ring, so a lost peer turns into a
    /// typed error instead of a hang.
    pub recv_deadline_ms: u64,
    /// Fault injection: this rank reports failure on attempt 0 after
    /// spraying stale frames ([`NO_RANK`] = off).
    pub fail_rank: u32,
    /// Fault injection: this rank exits mid-ring on attempt 0
    /// ([`NO_RANK`] = off).
    pub die_rank: u32,
    /// Fault injection: this rank severs its data-plane connection to
    /// `drop_peer` just before the ring on attempt 0 ([`NO_RANK`] = off).
    /// With reconnection armed the link heals and the job must still
    /// complete without a view change.
    pub drop_rank: u32,
    /// The peer whose connection `drop_rank` severs.
    pub drop_peer: u32,
    /// The membership view this job runs under (driver fills it).
    pub view: MembershipView,
    /// Partitions per absolute rank, indexed by rank.
    pub assigned: Vec<Vec<u64>>,
}

impl JobSpec {
    /// A dense job over `n` executors with sane defaults; tune fields after.
    pub fn dense(id: u64, seed: u64, dim: usize, total_parts: usize) -> Self {
        Self {
            id,
            sparse: false,
            threshold: 0.25,
            seed,
            dim,
            density: 1.0,
            total_parts,
            parallelism: 2,
            chunks: 2,
            algo: ALGO_RING,
            nodes: 0,
            attempt: 0,
            epoch_ns: 0,
            recv_deadline_ms: 2_000,
            fail_rank: NO_RANK,
            die_rank: NO_RANK,
            drop_rank: NO_RANK,
            drop_peer: NO_RANK,
            view: MembershipView { generation: 0, members: Vec::new() },
            assigned: Vec::new(),
        }
    }

    /// A sparse variant of [`JobSpec::dense`].
    pub fn sparse(id: u64, seed: u64, dim: usize, total_parts: usize, density: f64) -> Self {
        let mut s = Self::dense(id, seed, dim, total_parts);
        s.sparse = true;
        s.density = density;
        s
    }
}

impl Payload for JobSpec {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.id);
        enc.put_bool(self.sparse);
        enc.put_f64(self.threshold);
        enc.put_u64(self.seed);
        enc.put_usize(self.dim);
        enc.put_f64(self.density);
        enc.put_usize(self.total_parts);
        enc.put_usize(self.parallelism);
        enc.put_usize(self.chunks);
        enc.put_u8(self.algo);
        enc.put_usize(self.nodes);
        enc.put_u32(self.attempt);
        enc.put_u32(self.epoch_ns);
        enc.put_u64(self.recv_deadline_ms);
        enc.put_u32(self.fail_rank);
        enc.put_u32(self.die_rank);
        enc.put_u32(self.drop_rank);
        enc.put_u32(self.drop_peer);
        self.view.encode_into(enc);
        enc.put_usize(self.assigned.len());
        for parts in &self.assigned {
            enc.put_u64_slice(parts);
        }
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        let id = dec.get_u64()?;
        let sparse = dec.get_bool()?;
        let threshold = dec.get_f64()?;
        let seed = dec.get_u64()?;
        let dim = dec.get_usize()?;
        let density = dec.get_f64()?;
        let total_parts = dec.get_usize()?;
        let parallelism = dec.get_usize()?;
        let chunks = dec.get_usize()?;
        let algo = dec.get_u8()?;
        let nodes = dec.get_usize()?;
        let attempt = dec.get_u32()?;
        let epoch_ns = dec.get_u32()?;
        let recv_deadline_ms = dec.get_u64()?;
        let fail_rank = dec.get_u32()?;
        let die_rank = dec.get_u32()?;
        let drop_rank = dec.get_u32()?;
        let drop_peer = dec.get_u32()?;
        let view = MembershipView::decode_from(dec)?;
        let n = dec.get_usize()?;
        let mut assigned = Vec::with_capacity(n);
        for _ in 0..n {
            assigned.push(dec.get_u64_vec()?);
        }
        Ok(Self {
            id,
            sparse,
            threshold,
            seed,
            dim,
            density,
            total_parts,
            parallelism,
            chunks,
            algo,
            nodes,
            attempt,
            epoch_ns,
            recv_deadline_ms,
            fail_rank,
            die_rank,
            drop_rank,
            drop_peer,
            view,
            assigned,
        })
    }

    fn size_hint(&self) -> usize {
        106 + self.view.size_hint() + 8 + self.assigned.iter().map(|p| 8 + 8 * p.len()).sum::<usize>()
    }
}

/// Driver → executor control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverMsg {
    /// Run a split-aggregate job (ring over the data plane).
    Run(JobSpec),
    /// Tree fallback: recompute `parts` from lineage, ship the whole local
    /// aggregator up the control plane.
    Fallback {
        /// Job id the fallback belongs to.
        id: u64,
        /// The spec the aggregator is computed under (dataset definition).
        spec: JobSpec,
        /// Partitions this executor must cover.
        parts: Vec<u64>,
    },
    /// A replacement executor took over `rank`: dial its fresh listener at
    /// `addr` (sent only to live ranks *above* `rank`, per the mesh dial
    /// rule) and answer [`ExecMsg::AdmitOk`].
    Admit {
        /// The re-admitted absolute rank.
        rank: u32,
        /// Its new listen address.
        addr: String,
        /// The view generation this admission leads to (diagnostics).
        generation: u64,
    },
    /// Report recovery metrics ([`ExecMsg::Metrics`]).
    Metrics,
    /// Clean shutdown of the executor process.
    Shutdown,
}

const TAG_RUN: u8 = 1;
const TAG_FALLBACK: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;
const TAG_ADMIT: u8 = 4;
const TAG_METRICS: u8 = 5;

impl Payload for DriverMsg {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            DriverMsg::Run(spec) => {
                enc.put_u8(TAG_RUN);
                spec.encode_into(enc);
            }
            DriverMsg::Fallback { id, spec, parts } => {
                enc.put_u8(TAG_FALLBACK);
                enc.put_u64(*id);
                spec.encode_into(enc);
                enc.put_u64_slice(parts);
            }
            DriverMsg::Admit { rank, addr, generation } => {
                enc.put_u8(TAG_ADMIT);
                enc.put_u32(*rank);
                enc.put_str(addr);
                enc.put_u64(*generation);
            }
            DriverMsg::Metrics => enc.put_u8(TAG_METRICS),
            DriverMsg::Shutdown => enc.put_u8(TAG_SHUTDOWN),
        }
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        match dec.get_u8()? {
            TAG_RUN => Ok(DriverMsg::Run(JobSpec::decode_from(dec)?)),
            TAG_FALLBACK => Ok(DriverMsg::Fallback {
                id: dec.get_u64()?,
                spec: JobSpec::decode_from(dec)?,
                parts: dec.get_u64_vec()?,
            }),
            TAG_ADMIT => Ok(DriverMsg::Admit {
                rank: dec.get_u32()?,
                addr: dec.get_string()?,
                generation: dec.get_u64()?,
            }),
            TAG_METRICS => Ok(DriverMsg::Metrics),
            TAG_SHUTDOWN => Ok(DriverMsg::Shutdown),
            tag => Err(NetError::Codec(format!("invalid DriverMsg tag {tag}"))),
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            DriverMsg::Run(spec) => 1 + spec.size_hint(),
            DriverMsg::Fallback { spec, parts, .. } => 1 + 8 + spec.size_hint() + 8 + 8 * parts.len(),
            DriverMsg::Admit { addr, .. } => 1 + 4 + 8 + addr.len() + 8,
            DriverMsg::Metrics => 1,
            DriverMsg::Shutdown => 1,
        }
    }
}

/// Executor → driver control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecMsg {
    /// Ring completed: the `(global index, encoded segment)` pairs this rank
    /// owns — the gather half of split aggregation.
    JobOk {
        /// Job id.
        id: u64,
        /// Owned segments, encoded as the job's segment type.
        segments: Vec<(u64, ByteBuf)>,
    },
    /// The job failed on this rank (transport error or injected).
    JobErr {
        /// Job id.
        id: u64,
        /// The reporting rank.
        rank: u32,
        /// The view generation the rank was running under.
        view_gen: u64,
        /// Ranks this executor's transport currently considers dead —
        /// the driver's raw material for deciding membership.
        dead_peers: Vec<u32>,
        /// Human-readable cause (a [`NetError`] rendering).
        error: String,
    },
    /// Fallback aggregator covering the assigned partitions.
    FallbackOk {
        /// Job id.
        id: u64,
        /// The full local aggregator.
        agg: Vec<f64>,
    },
    /// Reply to [`DriverMsg::Admit`]: whether the dial to the re-admitted
    /// rank succeeded (`error` empty) or why not.
    AdmitOk {
        /// The re-admitted rank that was dialed.
        rank: u32,
        /// Empty on success; the dial failure otherwise.
        error: String,
    },
    /// Reply to [`DriverMsg::Metrics`]: flattened recovery metrics
    /// (counters as `(name, value)`; histograms as `name.count`/`name.sum`).
    Metrics {
        /// The metric pairs.
        pairs: Vec<(String, u64)>,
    },
}

const TAG_JOB_OK: u8 = 1;
const TAG_JOB_ERR: u8 = 2;
const TAG_FALLBACK_OK: u8 = 3;
const TAG_ADMIT_OK: u8 = 4;
const TAG_METRICS_REPLY: u8 = 5;

impl Payload for ExecMsg {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            ExecMsg::JobOk { id, segments } => {
                enc.put_u8(TAG_JOB_OK);
                enc.put_u64(*id);
                enc.put_usize(segments.len());
                for (index, bytes) in segments {
                    enc.put_u64(*index);
                    enc.put_bytes(bytes);
                }
            }
            ExecMsg::JobErr { id, rank, view_gen, dead_peers, error } => {
                enc.put_u8(TAG_JOB_ERR);
                enc.put_u64(*id);
                enc.put_u32(*rank);
                enc.put_u64(*view_gen);
                enc.put_u32_slice(dead_peers);
                enc.put_str(error);
            }
            ExecMsg::FallbackOk { id, agg } => {
                enc.put_u8(TAG_FALLBACK_OK);
                enc.put_u64(*id);
                enc.put_f64_slice(agg);
            }
            ExecMsg::AdmitOk { rank, error } => {
                enc.put_u8(TAG_ADMIT_OK);
                enc.put_u32(*rank);
                enc.put_str(error);
            }
            ExecMsg::Metrics { pairs } => {
                enc.put_u8(TAG_METRICS_REPLY);
                enc.put_usize(pairs.len());
                for (name, value) in pairs {
                    enc.put_str(name);
                    enc.put_u64(*value);
                }
            }
        }
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        match dec.get_u8()? {
            TAG_JOB_OK => {
                let id = dec.get_u64()?;
                let count = dec.get_usize()?;
                let mut segments = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let index = dec.get_u64()?;
                    let bytes = dec.get_bytes()?;
                    segments.push((index, bytes));
                }
                Ok(ExecMsg::JobOk { id, segments })
            }
            TAG_JOB_ERR => Ok(ExecMsg::JobErr {
                id: dec.get_u64()?,
                rank: dec.get_u32()?,
                view_gen: dec.get_u64()?,
                dead_peers: dec.get_u32_vec()?,
                error: dec.get_string()?,
            }),
            TAG_FALLBACK_OK => {
                Ok(ExecMsg::FallbackOk { id: dec.get_u64()?, agg: dec.get_f64_vec()? })
            }
            TAG_ADMIT_OK => Ok(ExecMsg::AdmitOk { rank: dec.get_u32()?, error: dec.get_string()? }),
            TAG_METRICS_REPLY => {
                let count = dec.get_usize()?;
                let mut pairs = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let name = dec.get_string()?;
                    let value = dec.get_u64()?;
                    pairs.push((name, value));
                }
                Ok(ExecMsg::Metrics { pairs })
            }
            tag => Err(NetError::Codec(format!("invalid ExecMsg tag {tag}"))),
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            ExecMsg::JobOk { segments, .. } => {
                1 + 8 + 8 + segments.iter().map(|(_, b)| 8 + 8 + b.len()).sum::<usize>()
            }
            ExecMsg::JobErr { dead_peers, error, .. } => {
                1 + 8 + 4 + 8 + 8 + 4 * dead_peers.len() + 8 + error.len()
            }
            ExecMsg::FallbackOk { agg, .. } => 1 + 8 + 8 + 8 * agg.len(),
            ExecMsg::AdmitOk { error, .. } => 1 + 4 + 8 + error.len(),
            ExecMsg::Metrics { pairs } => {
                1 + 8 + pairs.iter().map(|(n, _)| 8 + n.len() + 8).sum::<usize>()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic dataset: partitions as pure functions of (seed, part).
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The vector contributed by partition `part` — deterministic, so any
/// executor can recompute any partition (the lineage property fallback
/// recovery rests on). Values are small integers: `f64` sums of integers
/// this size are exact in every association order, which is what makes
/// "bit-exact across ring, tree, and oracle" a meaningful acceptance check.
pub fn part_vector(seed: u64, part: u64, dim: usize, density: f64) -> Vec<f64> {
    let mut v = vec![0.0; dim];
    if dim == 0 {
        return v;
    }
    let nnz = (((dim as f64) * density).ceil() as usize).clamp(1, dim.max(1));
    let base = splitmix64(seed ^ splitmix64(part.wrapping_add(1)));
    for k in 0..nnz {
        let h = splitmix64(base.wrapping_add(k as u64));
        let idx = (h % dim as u64) as usize;
        let val = ((h >> 32) % 512) as f64 + 1.0;
        v[idx] += val;
    }
    v
}

/// Driver-side expected value: the sum of every partition vector.
pub fn oracle(spec: &JobSpec) -> Vec<f64> {
    let mut out = vec![0.0; spec.dim];
    for part in 0..spec.total_parts as u64 {
        for (o, x) in out.iter_mut().zip(part_vector(spec.seed, part, spec.dim, spec.density)) {
            *o += x;
        }
    }
    out
}

fn local_aggregate(spec: &JobSpec, parts: &[u64]) -> Vec<f64> {
    let mut agg = vec![0.0; spec.dim];
    for &part in parts {
        for (a, x) in agg.iter_mut().zip(part_vector(spec.seed, part, spec.dim, spec.density)) {
            *a += x;
        }
    }
    agg
}

/// Splits `agg` into `count` contiguous segments of ceil(dim/count) (the
/// tail may be shorter or empty). Same layout on every rank and the driver.
fn split_segments(agg: &[f64], count: usize) -> Vec<Vec<f64>> {
    let seg_len = segment_len(agg.len(), count);
    (0..count)
        .map(|i| {
            let lo = (i * seg_len).min(agg.len());
            let hi = ((i + 1) * seg_len).min(agg.len());
            agg[lo..hi].to_vec()
        })
        .collect()
}

fn segment_len(dim: usize, count: usize) -> usize {
    dim.div_ceil(count.max(1))
}

/// Ring infos over `members` (absolute ranks ascending). ExecutorIds are the
/// absolute ranks, so transport addressing is unchanged while ring positions
/// compact to `0..members.len()`.
///
/// With `nodes == 0` every rank is its own (trivial) node. With `nodes > 0`
/// members are blocked into `min(nodes, members.len())` emulated hosts *by
/// position* in the (shared, view-ordered) member list, so every rank —
/// including survivors after a view change — derives the same grouping and
/// hierarchical collectives elect the same leaders everywhere.
fn member_infos(members: &[u32], nodes: usize) -> Vec<ExecutorInfo> {
    let len = members.len().max(1);
    let k = nodes.min(len);
    members
        .iter()
        .enumerate()
        .map(|(pos, &m)| {
            let node = if k == 0 { m as usize } else { pos * k / len };
            ExecutorInfo {
                id: ExecutorId(m),
                host: if k == 0 {
                    format!("proc-{m:03}")
                } else {
                    format!("emunode-{node:03}")
                },
                node,
                cores: 1,
            }
        })
        .collect()
}

/// Segments the reduce-scatter leaves distributed over a `ring_size`-member
/// ring under `spec`'s algorithm: `P·N·C` for the ring family, `P·L·C` for
/// the hierarchical path (only node leaders own segments). The driver's
/// reassembly and every executor must agree on this number.
fn job_segment_count(spec: &JobSpec, ring_size: usize) -> usize {
    let groups = if spec.algo == ALGO_HIER && spec.nodes > 0 {
        spec.nodes.min(ring_size)
    } else {
        ring_size
    };
    spec.parallelism * groups * spec.chunks
}

// ---------------------------------------------------------------------------
// Executor side
// ---------------------------------------------------------------------------

/// Joins the cluster at `driver_addr` and serves jobs until the driver sends
/// [`DriverMsg::Shutdown`] (or hangs up). The executor-process main loop.
pub fn run_executor(driver_addr: &str, join_timeout: Duration) -> NetResult<()> {
    run_executor_with(driver_addr, join_timeout, TcpConfig::default())
}

/// [`run_executor`] with explicit transport tunables (heartbeat cadence,
/// reconnect budget — the chaos harness shortens everything).
pub fn run_executor_with(
    driver_addr: &str,
    join_timeout: Duration,
    cfg: TcpConfig,
) -> NetResult<()> {
    let joined = rendezvous::join_with(driver_addr, join_timeout, cfg)?;
    serve(joined)
}

/// Serves jobs on an already-joined membership (exposed so tests can run
/// executors as threads).
pub fn serve(mut joined: Joined) -> NetResult<()> {
    loop {
        let payload = match joined.control.recv(Duration::from_secs(600)) {
            Ok(p) => p,
            Err(NetError::Timeout) => continue,
            // Driver gone: nothing left to serve.
            Err(NetError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = match DriverMsg::from_frame(payload)? {
            DriverMsg::Run(spec) => run_job(&joined, &spec),
            DriverMsg::Fallback { id, spec, parts } => {
                ExecMsg::FallbackOk { id, agg: local_aggregate(&spec, &parts) }
            }
            DriverMsg::Admit { rank, addr, generation: _ } => {
                let error = match admit_dial(&joined, rank, &addr) {
                    Ok(()) => String::new(),
                    Err(e) => e.to_string(),
                };
                ExecMsg::AdmitOk { rank, error }
            }
            DriverMsg::Metrics => ExecMsg::Metrics { pairs: flattened_metrics() },
            DriverMsg::Shutdown => return Ok(()),
        };
        // A reply that can't be delivered means the driver hung up or
        // evicted us mid-job — either way there is nobody left to serve,
        // which is a clean exit, not an executor fault.
        if joined.control.send(&reply.to_frame()).is_err() {
            return Ok(());
        }
    }
}

/// Dials a re-admitted rank's fresh listener (driver `Admit` step: only
/// ranks above the rejoiner do this, preserving the mesh dial direction) and
/// installs the socket as the new link.
fn admit_dial(joined: &Joined, rank: u32, addr: &str) -> NetResult<()> {
    if rank as usize >= joined.rank {
        return Err(NetError::InvalidAddress(format!(
            "admit of rank {rank} at rank {}: only higher ranks dial",
            joined.rank
        )));
    }
    let sa: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| NetError::InvalidAddress(format!("admit address {addr:?}: {e}")))?;
    let mut stream =
        std::net::TcpStream::connect_timeout(&sa, joined.cfg.connect_timeout).map_err(|e| {
            NetError::Io(format!("dialing re-admitted rank {rank} at {addr}: {e}"))
        })?;
    stream.set_nodelay(true).map_err(frame::io_to_net)?;
    let preamble = rendezvous::peer_preamble(joined.rank as u32);
    frame::write_frame(
        &mut stream,
        pool::global(),
        joined.rank as u32,
        frame::CONTROL_CHANNEL,
        &preamble,
    )?;
    joined.transport.install_peer(rank as usize, stream, Some(addr.to_string()))
}

/// Flattens the local metric registry for the driver: counters and gauges as
/// `(name, value)`, histograms as `name.count` / `name.sum`.
fn flattened_metrics() -> Vec<(String, u64)> {
    let mut pairs = Vec::new();
    for m in metrics::snapshot() {
        match m.value {
            MetricValue::Counter(v) => pairs.push((m.name, v)),
            MetricValue::Gauge(v) => pairs.push((m.name, v.max(0) as u64)),
            MetricValue::Histogram(count, sum, _) => {
                pairs.push((format!("{}.count", m.name), count));
                pairs.push((format!("{}.sum", m.name), sum));
            }
        }
    }
    pairs
}

/// How long an executor waits for links to view members to come up before
/// declaring them in a [`ExecMsg::JobErr`] — covers the re-admission race
/// where the driver's `Admit` dials are still in flight.
const MEMBER_LINK_GRACE: Duration = Duration::from_millis(1_000);

fn job_err(joined: &Joined, spec: &JobSpec, error: String) -> ExecMsg {
    ExecMsg::JobErr {
        id: spec.id,
        rank: joined.rank as u32,
        view_gen: spec.view.generation,
        dead_peers: joined.transport.dead_peers().iter().map(|&r| r as u32).collect(),
        error,
    }
}

/// Runs the reduce-scatter `spec.algo` names over an already-split segment
/// vector; both the dense and sparse arms of [`run_job`] go through here.
fn reduce_scatter_owned<V, F>(
    comm: &RingComm,
    segments: Vec<V>,
    merge: &F,
    spec: &JobSpec,
) -> NetResult<Vec<OwnedSegment<V>>>
where
    V: Payload,
    F: Fn(&mut V, V) + Sync,
{
    match spec.algo {
        ALGO_HIER => hierarchical_reduce_scatter_chunked_by(comm, segments, merge, spec.chunks),
        _ => ring_reduce_scatter_chunked_by(comm, segments, merge, spec.chunks),
    }
}

fn run_job(joined: &Joined, spec: &JobSpec) -> ExecMsg {
    let rank = joined.rank;
    let n = joined.n;
    // The founding protocol shipped no view; treat empty as "all ranks".
    let members: Vec<u32> = if spec.view.members.is_empty() {
        (0..n as u32).collect()
    } else {
        spec.view.members.clone()
    };
    let Some(position) = members.iter().position(|&m| m as usize == rank) else {
        return job_err(
            joined,
            spec,
            format!("rank {rank} is not in view {} {:?}", spec.view.generation, members),
        );
    };
    if spec.assigned.len() != n || spec.parallelism > joined.channels {
        return job_err(
            joined,
            spec,
            format!(
                "spec shape mismatch: {} assignments for {n} ranks, P={} over {} channels",
                spec.assigned.len(),
                spec.parallelism,
                joined.channels
            ),
        );
    }
    // Wait briefly for links to every view member: a just-readmitted peer's
    // dial may still be in flight when the first Run of the new view lands.
    let grace = Instant::now() + MEMBER_LINK_GRACE;
    for &m in &members {
        let m = m as usize;
        if m == rank {
            continue;
        }
        while joined.transport.peer_is_dead(m) && Instant::now() < grace {
            std::thread::sleep(Duration::from_millis(2));
        }
        if joined.transport.peer_is_dead(m) {
            let detail = joined
                .transport
                .peer_error(m)
                .map(|e| e.to_string())
                .unwrap_or_else(|| "dead".into());
            return job_err(joined, spec, format!("view member {m} is down: {detail}"));
        }
    }
    if spec.algo > ALGO_HIER {
        return job_err(joined, spec, format!("unknown reduction algorithm {}", spec.algo));
    }
    let agg = local_aggregate(spec, &spec.assigned[rank]);

    let ring = Arc::new(RingTopology::new(
        member_infos(&members, spec.nodes),
        RingOrder::ById,
        spec.parallelism,
    ));
    let net: Arc<dyn Transport> = joined.transport.clone();
    let comm = RingComm::new(net, ring, position)
        .with_epoch(spec.id, sparker_net::epoch::namespaced(spec.epoch_ns, spec.attempt))
        .with_recv_deadline(Duration::from_millis(spec.recv_deadline_ms));

    // Injected transient failure: leave well-formed frames of this (doomed)
    // attempt on the wire, then report failure. The retry proves the epoch
    // fence rejects them across real sockets.
    if spec.attempt == 0 && spec.fail_rank == rank as u32 {
        for ch in 0..spec.parallelism {
            let _ = comm.send_next(ch, ByteBuf::from_static(b"stale attempt-0 frame"));
        }
        return job_err(joined, spec, "injected failure (fail_rank)".into());
    }
    // Injected death: first frame goes out, then the process vanishes
    // mid-collective. Peers must observe the death as a typed error, and the
    // driver must re-form the ring over the survivors.
    if spec.attempt == 0 && spec.die_rank == rank as u32 {
        let _ = comm.send_next(0, ByteBuf::from_static(b"dying mid-ring"));
        std::process::exit(KILLED_EXIT_CODE);
    }
    // Injected connection drop: sever one data-plane link right before the
    // ring. Reconnection must heal it — the attempt may fail on a deadline,
    // but the gang retry (same view) must succeed over the healed link.
    if spec.attempt == 0 && spec.drop_rank == rank as u32 && spec.drop_peer != NO_RANK {
        let _ = joined.transport.kill_connection(spec.drop_peer as usize);
    }

    let seg_count = job_segment_count(spec, members.len());
    let result: NetResult<Vec<(u64, ByteBuf)>> = if spec.sparse {
        let segs: Vec<DenseOrSparse> = split_segments(&agg, seg_count)
            .into_iter()
            .map(|v| DenseOrSparse::from_dense(v, spec.threshold))
            .collect();
        reduce_scatter_owned(&comm, segs, &|a: &mut DenseOrSparse, b: DenseOrSparse| a.merge(&b), spec)
            .map(|owned| {
                owned.into_iter().map(|o| (o.index as u64, o.segment.to_frame())).collect()
            })
    } else {
        let segs: Vec<F64Array> =
            split_segments(&agg, seg_count).into_iter().map(F64Array).collect();
        reduce_scatter_owned(
            &comm,
            segs,
            &|a: &mut F64Array, b: F64Array| {
                debug_assert_eq!(a.0.len(), b.0.len());
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            spec,
        )
        .map(|owned| {
            owned.into_iter().map(|o| (o.index as u64, o.segment.to_frame())).collect()
        })
    };

    match result {
        Ok(segments) => ExecMsg::JobOk { id: spec.id, segments },
        Err(e) => job_err(joined, spec, e.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Driver side
// ---------------------------------------------------------------------------

/// Result of one driver-orchestrated job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The aggregated vector (length `dim`).
    pub value: Vec<f64>,
    /// Gang attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the tree fallback produced the result.
    pub used_fallback: bool,
    /// Owned segments gathered over the control plane (ring path only).
    pub wire_segments: usize,
    /// Encoded segment bytes gathered from executors (ring path only).
    pub result_bytes: u64,
    /// The membership view generation the result was produced under.
    pub view_generation: u64,
    /// Ring size of the successful attempt (0 on the fallback path).
    pub ring_size: usize,
}

/// The multi-process driver: owns the control connections and the membership
/// view, dispatches jobs, and decides between gang retry, survivor-ring
/// re-formation, and tree fallback (in that order).
pub struct MultiProcDriver {
    controls: Vec<Option<ControlConn>>,
    /// The current membership view (generation bumps on every change).
    view: MembershipView,
    /// Gang attempts before giving up on the ring path.
    pub max_attempts: u32,
    /// Whether exhausted ring attempts may degrade to the tree fallback
    /// (the default). Schedulers turn this off so a job caught by a view
    /// change fails *typed* and promptly instead of silently recomputing —
    /// queued jobs then run under the new view.
    pub allow_fallback: bool,
    /// How long to wait for each executor's reply to a job.
    pub reply_timeout: Duration,
    /// The last ring-attempt failure seen by [`MultiProcDriver::run_job`]
    /// (diagnostics: why a job needed retries or the fallback).
    pub last_ring_error: String,
    /// `(dialer rank, error)` for every failed [`DriverMsg::Admit`] dial in
    /// the most recent [`MultiProcDriver::try_readmit`].
    pub last_admit_errors: Vec<(usize, String)>,
}

impl MultiProcDriver {
    /// Wraps the control connections returned by
    /// [`rendezvous::Coordinator::wait_for`].
    pub fn new(controls: Vec<ControlConn>) -> Self {
        let n = controls.len();
        Self {
            controls: controls.into_iter().map(Some).collect(),
            view: MembershipView::full(n),
            max_attempts: 4,
            allow_fallback: true,
            reply_timeout: Duration::from_secs(60),
            last_ring_error: String::new(),
            last_admit_errors: Vec::new(),
        }
    }

    /// Total executor ranks the cluster started with.
    pub fn size(&self) -> usize {
        self.controls.len()
    }

    /// Ranks whose control connection is still alive.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.controls.len()).filter(|&r| self.controls[r].is_some()).collect()
    }

    /// The current membership view.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    fn send_to(&mut self, rank: usize, msg: &DriverMsg) {
        let failed = match &mut self.controls[rank] {
            Some(conn) => conn.send(&msg.to_frame()).is_err(),
            None => false,
        };
        if failed {
            self.controls[rank] = None;
        }
    }

    fn recv_from(&mut self, rank: usize) -> Option<ExecMsg> {
        let timeout = self.reply_timeout;
        let result = match &mut self.controls[rank] {
            Some(conn) => match conn.recv(timeout) {
                Ok(payload) => ExecMsg::from_frame(payload).ok(),
                Err(_) => None,
            },
            None => return None,
        };
        if result.is_none() {
            // Timeout, disconnect, or garbage: this control link is done.
            self.controls[rank] = None;
        }
        result
    }

    /// Publishes a new view if the live set changed since the last one.
    /// Death is confirmed *only* by control-connection loss — a transport
    /// that is merely reconnecting does not evict anyone.
    fn refresh_view(&mut self) {
        let members: Vec<u32> = self.alive().iter().map(|&r| r as u32).collect();
        if members != self.view.members {
            self.view.generation += 1;
            self.view.members = members;
            count_view_change();
        }
    }

    /// Runs one job to completion: gang attempts over the ring (re-formed
    /// over survivors whenever the membership view changes), then the tree
    /// fallback as last resort. `Err` only when no exact result can be
    /// produced at all.
    pub fn run_job(&mut self, base: &JobSpec) -> EngineResult<JobOutcome> {
        let n_total = self.size();
        let mut attempts = 0;
        let mut last_err = String::new();
        while attempts < self.max_attempts {
            self.refresh_view();
            let gang = self.alive();
            if gang.is_empty() {
                break;
            }
            let mut spec = base.clone();
            spec.attempt = attempts;
            spec.view = self.view.clone();
            spec.assigned = assign_parts(base.total_parts, &gang, n_total);
            attempts += 1;
            if attempts > 1 {
                count_ring_retry();
            }
            for &rank in &gang {
                self.send_to(rank, &DriverMsg::Run(spec.clone()));
            }
            let mut oks: Vec<Vec<(u64, ByteBuf)>> = Vec::new();
            let mut failures: Vec<String> = Vec::new();
            for &rank in &gang {
                match self.recv_from(rank) {
                    Some(ExecMsg::JobOk { id, segments }) if id == spec.id => oks.push(segments),
                    Some(ExecMsg::JobErr { id, rank: r, view_gen, dead_peers, error })
                        if id == spec.id =>
                    {
                        failures.push(format!(
                            "rank {r} (view {view_gen}, dead peers {dead_peers:?}): {error}"
                        ));
                    }
                    Some(other) => {
                        failures.push(format!("rank {rank}: unexpected reply {other:?}"));
                    }
                    None => {
                        failures.push(format!("rank {rank}: control connection lost"));
                    }
                }
            }
            if let Some(f) = failures.last() {
                last_err = f.clone();
            }
            self.last_ring_error = failures.join("; ");
            if oks.len() == gang.len() {
                let (value, wire_segments, result_bytes) =
                    assemble(base, gang.len(), oks).map_err(|reason| {
                        EngineError::TaskFailed {
                            stage: job_stage(base.id, self.view.generation),
                            task: gang[0],
                            attempts,
                            reason,
                        }
                    })?;
                return Ok(JobOutcome {
                    value,
                    attempts,
                    used_fallback: false,
                    wire_segments,
                    result_bytes,
                    view_generation: self.view.generation,
                    ring_size: gang.len(),
                });
            }
        }

        if !self.allow_fallback {
            self.refresh_view();
            return Err(EngineError::TaskFailed {
                stage: job_stage(base.id, self.view.generation),
                task: 0,
                attempts,
                reason: format!("ring attempts exhausted, fallback disabled: {last_err}"),
            });
        }

        // Tree fallback: survivors recompute everything from lineage.
        count_fallback();
        self.refresh_view();
        let survivors = self.alive();
        if survivors.is_empty() {
            return Err(EngineError::TaskFailed {
                stage: job_stage(base.id, self.view.generation),
                task: 0,
                attempts,
                reason: format!("no executors left for fallback (last error: {last_err})"),
            });
        }
        let assigned = assign_parts(base.total_parts, &survivors, self.size());
        for &rank in &survivors {
            self.send_to(
                rank,
                &DriverMsg::Fallback {
                    id: base.id,
                    spec: base.clone(),
                    parts: assigned[rank].clone(),
                },
            );
        }
        let mut aggs = Vec::with_capacity(survivors.len());
        for &rank in &survivors {
            match self.recv_from(rank) {
                Some(ExecMsg::FallbackOk { id, agg }) if id == base.id && agg.len() == base.dim => {
                    aggs.push(agg);
                }
                other => {
                    return Err(EngineError::TaskFailed {
                        stage: job_stage(base.id, self.view.generation),
                        task: rank,
                        attempts: attempts + 1,
                        reason: format!("fallback reply was {other:?}"),
                    });
                }
            }
        }
        Ok(JobOutcome {
            value: tree_merge(aggs),
            attempts: attempts + 1,
            used_fallback: true,
            wire_segments: 0,
            result_bytes: 0,
            view_generation: self.view.generation,
            ring_size: 0,
        })
    }

    /// Checks the rendezvous listener for a replacement executor and, if one
    /// arrived and a rank is vacant, re-admits it: the newcomer takes the
    /// lowest dead rank, dials the live lower ranks itself (during its
    /// `REJOIN` join), and live higher ranks are told to dial it. Returns
    /// the re-admitted rank, or `None` if nobody knocked within `wait`.
    pub fn try_readmit(
        &mut self,
        coordinator: &mut Coordinator,
        wait: Duration,
    ) -> EngineResult<Option<usize>> {
        let deadline = Instant::now() + wait;
        let (stream, addr) = loop {
            match coordinator.poll_hello().map_err(EngineError::Net)? {
                Some(hello) => break hello,
                None => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        };
        let Some(rank) = (0..self.size()).find(|&r| self.controls[r].is_none()) else {
            // No vacancy: drop the socket, the newcomer's join will fail.
            return Ok(None);
        };
        let live = self.alive();
        let control = coordinator
            .readmit(stream, addr.clone(), rank, &live)
            .map_err(EngineError::Net)?;
        self.controls[rank] = Some(control);
        // Live higher ranks dial the rejoiner (mesh rule: higher dials
        // lower's listener... reversed here: the rejoiner dialed lower live
        // ranks during its join; higher ranks dial its kept listener now).
        let next_gen = self.view.generation + 1;
        let dialers: Vec<usize> = live.iter().copied().filter(|&r| r > rank).collect();
        for &r in &dialers {
            self.send_to(
                r,
                &DriverMsg::Admit {
                    rank: rank as u32,
                    addr: addr.clone(),
                    generation: next_gen,
                },
            );
        }
        self.last_admit_errors.clear();
        for &r in &dialers {
            match self.recv_from(r) {
                Some(ExecMsg::AdmitOk { error, .. }) if error.is_empty() => {}
                Some(ExecMsg::AdmitOk { error, .. }) => {
                    // The dial failed; the link stays down and the next job
                    // will surface it as a typed error. Not fatal here.
                    self.last_admit_errors.push((r, error));
                }
                Some(other) => self.last_admit_errors.push((r, format!("unexpected {other:?}"))),
                None => self.last_admit_errors.push((r, "control connection lost".into())),
            }
        }
        count_readmission();
        // The next run_job's refresh_view publishes the bumped generation.
        Ok(Some(rank))
    }

    /// Gathers flattened recovery metrics from every live executor.
    pub fn collect_metrics(&mut self) -> Vec<(usize, Vec<(String, u64)>)> {
        let live = self.alive();
        for &rank in &live {
            self.send_to(rank, &DriverMsg::Metrics);
        }
        let mut out = Vec::new();
        for &rank in &live {
            if let Some(ExecMsg::Metrics { pairs }) = self.recv_from(rank) {
                out.push((rank, pairs));
            }
        }
        out
    }

    /// Sends a clean shutdown to every surviving executor.
    pub fn shutdown(&mut self) {
        for rank in 0..self.size() {
            self.send_to(rank, &DriverMsg::Shutdown);
        }
    }
}

fn job_stage(id: u64, generation: u64) -> String {
    format!("multiproc job {id} (view {generation})")
}

/// Round-robins partitions over `ranks`, returning a per-rank (of `n_total`)
/// assignment; ranks not listed get no partitions.
fn assign_parts(total_parts: usize, ranks: &[usize], n_total: usize) -> Vec<Vec<u64>> {
    let mut assigned = vec![Vec::new(); n_total];
    for part in 0..total_parts as u64 {
        let rank = ranks[(part as usize) % ranks.len()];
        assigned[rank].push(part);
    }
    assigned
}

/// Reassembles gathered segments into the full vector, checking that every
/// global index arrived exactly once. `ring_size` is the member count of the
/// view the job ran under (segment layout depends on it).
fn assemble(
    spec: &JobSpec,
    ring_size: usize,
    replies: Vec<Vec<(u64, ByteBuf)>>,
) -> Result<(Vec<f64>, usize, u64), String> {
    let seg_count = job_segment_count(spec, ring_size);
    let seg_len = segment_len(spec.dim, seg_count);
    let mut value = vec![0.0; spec.dim];
    let mut seen = vec![false; seg_count];
    let mut wire_segments = 0usize;
    let mut result_bytes = 0u64;
    for segments in replies {
        for (index, bytes) in segments {
            let index = index as usize;
            if index >= seg_count || seen[index] {
                return Err(format!(
                    "job {}: segment {index} out of range or duplicated",
                    spec.id
                ));
            }
            seen[index] = true;
            wire_segments += 1;
            result_bytes += bytes.len() as u64;
            let dense = if spec.sparse {
                DenseOrSparse::from_frame(bytes).map_err(|e| e.to_string())?.into_dense()
            } else {
                F64Array::from_frame(bytes).map_err(|e| e.to_string())?.0
            };
            let lo = (index * seg_len).min(spec.dim);
            let hi = (lo + dense.len()).min(spec.dim);
            if hi - lo != dense.len() {
                return Err(format!(
                    "job {}: segment {index} length {} overflows dim {}",
                    spec.id,
                    dense.len(),
                    spec.dim
                ));
            }
            value[lo..hi].copy_from_slice(&dense);
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(format!("job {}: segment {missing} never arrived", spec.id));
    }
    Ok((value, wire_segments, result_bytes))
}

/// Pairwise (log-depth) merge of whole aggregators — the tree the fallback
/// path degrades to.
fn tree_merge(mut aggs: Vec<Vec<f64>>) -> Vec<f64> {
    while aggs.len() > 1 {
        let mut next = Vec::with_capacity(aggs.len().div_ceil(2));
        let mut it = aggs.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            next.push(a);
        }
        aggs = next;
    }
    aggs.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_net::tcp::rendezvous::Coordinator;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Spins up a driver plus `n` executor threads joined over real loopback
    /// TCP, runs `jobs` through them, and returns the outcomes.
    fn run_cluster(n: usize, channels: usize, jobs: Vec<JobSpec>) -> Vec<JobOutcome> {
        let mut coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let mut execs = Vec::new();
        for _ in 0..n {
            let addr = addr.clone();
            execs.push(std::thread::spawn(move || {
                run_executor(&addr, Duration::from_secs(20)).unwrap();
            }));
        }
        let controls = coordinator.wait_for(n, channels, Duration::from_secs(20)).unwrap();
        let mut driver = MultiProcDriver::new(controls);
        driver.reply_timeout = Duration::from_secs(30);
        let outcomes: Vec<JobOutcome> =
            jobs.iter().map(|j| driver.run_job(j).unwrap()).collect();
        driver.shutdown();
        for e in execs {
            e.join().unwrap();
        }
        outcomes
    }

    #[test]
    fn dense_job_is_bit_exact() {
        let spec = JobSpec::dense(11, 0xD5EED, 4096, 9);
        let outcomes = run_cluster(3, 2, vec![spec.clone()]);
        let o = &outcomes[0];
        assert_eq!(o.attempts, 1);
        assert!(!o.used_fallback);
        assert_eq!(o.wire_segments, 2 * 3 * 2);
        assert_eq!(o.ring_size, 3);
        assert_eq!(o.view_generation, 0);
        assert_eq!(bits(&o.value), bits(&oracle(&spec)));
    }

    #[test]
    fn sparse_job_is_bit_exact_and_cheaper_on_the_wire() {
        let dim = 8192;
        let sparse = JobSpec::sparse(21, 0x5EED5, dim, 9, 0.01);
        let mut dense = sparse.clone();
        dense.id = 22;
        dense.sparse = false;
        let outcomes = run_cluster(3, 2, vec![sparse.clone(), dense]);
        assert_eq!(bits(&outcomes[0].value), bits(&oracle(&sparse)));
        assert_eq!(bits(&outcomes[1].value), bits(&outcomes[0].value));
        assert!(
            outcomes[0].result_bytes * 3 < outcomes[1].result_bytes,
            "sparse gather ({} B) should be well under dense ({} B)",
            outcomes[0].result_bytes,
            outcomes[1].result_bytes
        );
    }

    #[test]
    fn hierarchical_job_is_bit_exact_over_real_tcp() {
        // 4 ranks blocked into 2 emulated nodes: ranks {0,1} on emunode-000,
        // {2,3} on emunode-001. Leaders (0, 2) own all P*L*C segments.
        let mut dense = JobSpec::dense(51, 0x41E2, 4096, 9);
        dense.algo = ALGO_HIER;
        dense.nodes = 2;
        let mut sparse = JobSpec::sparse(52, 0x41E3, 4096, 9, 0.02);
        sparse.algo = ALGO_HIER;
        sparse.nodes = 2;
        let outcomes = run_cluster(4, 2, vec![dense.clone(), sparse.clone()]);
        let o = &outcomes[0];
        assert_eq!(o.attempts, 1);
        assert!(!o.used_fallback);
        assert_eq!(o.wire_segments, 2 * 2 * 2, "P*L*C segments, leaders only");
        assert_eq!(o.ring_size, 4);
        assert_eq!(bits(&o.value), bits(&oracle(&dense)));
        assert_eq!(bits(&outcomes[1].value), bits(&oracle(&sparse)));
    }

    #[test]
    fn hierarchical_without_emulated_nodes_degenerates_to_flat() {
        // nodes == 0 leaves every rank its own node; the hierarchical path
        // must collapse to the flat ring layout (P*N*C segments).
        let mut spec = JobSpec::dense(53, 0x41E4, 2048, 6);
        spec.algo = ALGO_HIER;
        let outcomes = run_cluster(3, 2, vec![spec.clone()]);
        let o = &outcomes[0];
        assert_eq!(o.wire_segments, 2 * 3 * 2);
        assert_eq!(bits(&o.value), bits(&oracle(&spec)));
    }

    #[test]
    fn injected_failure_retries_and_fences_stale_frames() {
        let mut spec = JobSpec::dense(31, 0xFA11, 2048, 6);
        spec.fail_rank = 1;
        spec.recv_deadline_ms = 700;
        let outcomes = run_cluster(3, 2, vec![spec.clone()]);
        let o = &outcomes[0];
        assert_eq!(o.attempts, 2, "attempt 0 must fail, attempt 1 succeed");
        assert!(!o.used_fallback);
        assert_eq!(o.view_generation, 0, "a transient failure must not change the view");
        assert_eq!(bits(&o.value), bits(&oracle(&spec)));
    }

    #[test]
    fn injected_connection_drop_heals_without_view_change() {
        let mut spec = JobSpec::dense(41, 0xD401, 2048, 6);
        spec.drop_rank = 1;
        spec.drop_peer = 0;
        spec.recv_deadline_ms = 1_500;
        let outcomes = run_cluster(3, 2, vec![spec.clone()]);
        let o = &outcomes[0];
        assert!(!o.used_fallback, "reconnection must heal the drop, not fallback");
        assert_eq!(o.view_generation, 0, "a healed drop must not change the view");
        assert_eq!(o.ring_size, 3);
        assert_eq!(bits(&o.value), bits(&oracle(&spec)));
    }

    #[test]
    fn payloads_roundtrip() {
        let spec = JobSpec::sparse(7, 9, 100, 4, 0.5);
        let mut with_assign = spec.clone();
        with_assign.assigned = vec![vec![0, 3], vec![1], vec![2]];
        with_assign.view = MembershipView { generation: 3, members: vec![0, 2, 3] };
        with_assign.epoch_ns = 511;
        with_assign.algo = ALGO_HIER;
        with_assign.nodes = 2;
        let frame = with_assign.to_frame();
        assert_eq!(frame.len(), with_assign.size_hint(), "JobSpec size_hint must be exact");
        for msg in [
            DriverMsg::Run(with_assign.clone()),
            DriverMsg::Fallback { id: 7, spec: with_assign, parts: vec![0, 1, 2, 3] },
            DriverMsg::Admit { rank: 2, addr: "127.0.0.1:4444".into(), generation: 5 },
            DriverMsg::Metrics,
            DriverMsg::Shutdown,
        ] {
            let back = DriverMsg::from_frame(msg.to_frame()).unwrap();
            assert_eq!(back, msg);
        }
        for msg in [
            ExecMsg::JobOk {
                id: 1,
                segments: vec![(0, ByteBuf::from_static(b"seg0")), (5, ByteBuf::new())],
            },
            ExecMsg::JobErr {
                id: 2,
                rank: 1,
                view_gen: 4,
                dead_peers: vec![0, 2],
                error: "peer disconnected".into(),
            },
            ExecMsg::FallbackOk { id: 3, agg: vec![1.0, 2.0, 3.0] },
            ExecMsg::AdmitOk { rank: 2, error: String::new() },
            ExecMsg::Metrics {
                pairs: vec![("net.reconnect.healed".into(), 2), ("x".into(), 0)],
            },
        ] {
            let frame = msg.to_frame();
            assert_eq!(frame.len(), msg.size_hint(), "size_hint must be exact");
            let back = ExecMsg::from_frame(frame).unwrap();
            match (&back, &msg) {
                (ExecMsg::JobOk { id: a, segments: sa }, ExecMsg::JobOk { id: b, segments: sb }) => {
                    assert_eq!(a, b);
                    assert_eq!(sa.len(), sb.len());
                    for ((ia, ba), (ib, bb)) in sa.iter().zip(sb) {
                        assert_eq!(ia, ib);
                        assert_eq!(&ba[..], &bb[..]);
                    }
                }
                _ => assert_eq!(back, msg),
            }
        }
    }

    #[test]
    fn membership_view_roundtrips() {
        for view in [
            MembershipView::full(4),
            MembershipView { generation: 9, members: vec![1, 3] },
            MembershipView { generation: 0, members: Vec::new() },
        ] {
            let back = MembershipView::from_frame(view.to_frame()).unwrap();
            assert_eq!(back, view);
            assert_eq!(view.to_frame().len(), view.size_hint());
        }
    }

    #[test]
    fn oracle_matches_manual_sum() {
        let spec = JobSpec::dense(1, 42, 64, 5);
        let mut manual = vec![0.0; 64];
        for p in 0..5 {
            for (m, x) in manual.iter_mut().zip(part_vector(42, p, 64, 1.0)) {
                *m += x;
            }
        }
        assert_eq!(bits(&oracle(&spec)), bits(&manual));
    }
}
