//! Multi-process split aggregation: the SPMD driver/executor protocol that
//! runs the full collective stack across OS processes over real TCP.
//!
//! The in-process engine ([`crate::cluster`]) models executors as threads;
//! this module is the production-shaped variant the paper actually ships:
//! every executor is its own process, joined to the driver through
//! [`sparker_net::tcp::rendezvous`], with two planes of traffic:
//!
//! * **control plane** — the blocking driver↔executor socket from
//!   rendezvous. The driver dispatches [`DriverMsg::Run`] jobs carrying a
//!   full [`JobSpec`]; executors answer [`ExecMsg::JobOk`] (their owned,
//!   fully-reduced segments) or [`ExecMsg::JobErr`].
//! * **data plane** — the [`sparker_net::tcp::TcpTransport`] peer mesh,
//!   where the chunk-pipelined ring reduce-scatter runs, epoch-fenced
//!   exactly as in-process ([`sparker_collectives::RingComm`]).
//!
//! # Recovery semantics (mirroring `ops::split_aggregate`)
//!
//! Partition data is a *pure function* of `(seed, part)` — the multi-process
//! equivalent of RDD lineage: any executor can recompute any partition. On a
//! transient job failure (an executor reports [`ExecMsg::JobErr`]) the
//! driver retries the whole gang with a bumped `attempt`; stale frames from
//! the failed attempt are rejected by the receivers' epoch fence — over real
//! sockets this is load-bearing, not simulated. When an executor *dies*
//! (its control socket drops, or peers see [`sparker_net::NetError::Disconnected`]
//! on the mesh), the ring is unusable, so the driver degrades to the tree
//! fallback: survivors recompute the dead executor's partitions from lineage
//! and ship whole aggregators up the control plane, which the driver merges
//! pairwise — slower, but exact. Fault injection for both paths is built
//! into [`JobSpec`] (`fail_rank`, `die_rank`) so `launch_cluster` can prove
//! them against genuinely killed processes.
//!
//! All job values are integer-valued `f64`s, so sums are exact in any merge
//! order and every path (ring, fallback, driver-side [`oracle`]) must agree
//! **bit-for-bit** — the acceptance check is exact equality, not tolerance.

use std::sync::Arc;
use std::time::Duration;

use sparker_collectives::ring::ring_reduce_scatter_chunked_by;
use sparker_collectives::RingComm;
use sparker_net::codec::{Decoder, Encoder, F64Array, Payload};
use sparker_net::error::{NetError, NetResult};
use sparker_net::tcp::rendezvous::{self, ControlConn, Joined};
use sparker_net::topology::{ExecutorId, ExecutorInfo, RingOrder, RingTopology};
use sparker_net::transport::Transport;
use sparker_net::ByteBuf;
use sparker_sparse::DenseOrSparse;

/// Exit code of an executor killed by `die_rank` fault injection, so the
/// launcher can tell an injected death from a crash.
pub const KILLED_EXIT_CODE: i32 = 13;

/// Sentinel for "no rank" in the fault-injection fields.
pub const NO_RANK: u32 = u32::MAX;

/// One split-aggregate job, shipped whole to every executor.
///
/// Data is defined by `(seed, dim, density, total_parts)` through
/// [`part_vector`]; `assigned[rank]` lists the partitions each rank
/// aggregates locally before the ring runs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Collective op id — the `op` half of the epoch fence.
    pub id: u64,
    /// Reduce [`DenseOrSparse`] segments instead of dense [`F64Array`]s.
    pub sparse: bool,
    /// Density threshold for the adaptive segments (sparse jobs).
    pub threshold: f64,
    /// Seed defining the dataset.
    pub seed: u64,
    /// Aggregator length.
    pub dim: usize,
    /// Fraction of `dim` touched per partition (1.0 = dense).
    pub density: f64,
    /// Number of partitions in the dataset.
    pub total_parts: usize,
    /// Ring channels (the paper's parallelism `P`).
    pub parallelism: usize,
    /// Pipeline chunks per ring slot (`C`).
    pub chunks: usize,
    /// Gang attempt — the `attempt` half of the epoch fence.
    pub attempt: u32,
    /// Per-receive deadline inside the ring, so a lost peer turns into a
    /// typed error instead of a hang.
    pub recv_deadline_ms: u64,
    /// Fault injection: this rank reports failure on attempt 0 after
    /// spraying stale frames ([`NO_RANK`] = off).
    pub fail_rank: u32,
    /// Fault injection: this rank exits mid-ring on attempt 0
    /// ([`NO_RANK`] = off).
    pub die_rank: u32,
    /// Partitions per rank, indexed by rank.
    pub assigned: Vec<Vec<u64>>,
}

impl JobSpec {
    /// A dense job over `n` executors with sane defaults; tune fields after.
    pub fn dense(id: u64, seed: u64, dim: usize, total_parts: usize) -> Self {
        Self {
            id,
            sparse: false,
            threshold: 0.25,
            seed,
            dim,
            density: 1.0,
            total_parts,
            parallelism: 2,
            chunks: 2,
            attempt: 0,
            recv_deadline_ms: 2_000,
            fail_rank: NO_RANK,
            die_rank: NO_RANK,
            assigned: Vec::new(),
        }
    }

    /// A sparse variant of [`JobSpec::dense`].
    pub fn sparse(id: u64, seed: u64, dim: usize, total_parts: usize, density: f64) -> Self {
        let mut s = Self::dense(id, seed, dim, total_parts);
        s.sparse = true;
        s.density = density;
        s
    }
}

impl Payload for JobSpec {
    fn encode_into(&self, enc: &mut Encoder) {
        enc.put_u64(self.id);
        enc.put_bool(self.sparse);
        enc.put_f64(self.threshold);
        enc.put_u64(self.seed);
        enc.put_usize(self.dim);
        enc.put_f64(self.density);
        enc.put_usize(self.total_parts);
        enc.put_usize(self.parallelism);
        enc.put_usize(self.chunks);
        enc.put_u32(self.attempt);
        enc.put_u64(self.recv_deadline_ms);
        enc.put_u32(self.fail_rank);
        enc.put_u32(self.die_rank);
        enc.put_usize(self.assigned.len());
        for parts in &self.assigned {
            enc.put_u64_slice(parts);
        }
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        let id = dec.get_u64()?;
        let sparse = dec.get_bool()?;
        let threshold = dec.get_f64()?;
        let seed = dec.get_u64()?;
        let dim = dec.get_usize()?;
        let density = dec.get_f64()?;
        let total_parts = dec.get_usize()?;
        let parallelism = dec.get_usize()?;
        let chunks = dec.get_usize()?;
        let attempt = dec.get_u32()?;
        let recv_deadline_ms = dec.get_u64()?;
        let fail_rank = dec.get_u32()?;
        let die_rank = dec.get_u32()?;
        let n = dec.get_usize()?;
        let mut assigned = Vec::with_capacity(n);
        for _ in 0..n {
            assigned.push(dec.get_u64_vec()?);
        }
        Ok(Self {
            id,
            sparse,
            threshold,
            seed,
            dim,
            density,
            total_parts,
            parallelism,
            chunks,
            attempt,
            recv_deadline_ms,
            fail_rank,
            die_rank,
            assigned,
        })
    }

    fn size_hint(&self) -> usize {
        85 + 8 + self.assigned.iter().map(|p| 8 + 8 * p.len()).sum::<usize>()
    }
}

/// Driver → executor control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum DriverMsg {
    /// Run a split-aggregate job (ring over the data plane).
    Run(JobSpec),
    /// Tree fallback: recompute `parts` from lineage, ship the whole local
    /// aggregator up the control plane.
    Fallback {
        /// Job id the fallback belongs to.
        id: u64,
        /// The spec the aggregator is computed under (dataset definition).
        spec: JobSpec,
        /// Partitions this executor must cover.
        parts: Vec<u64>,
    },
    /// Clean shutdown of the executor process.
    Shutdown,
}

const TAG_RUN: u8 = 1;
const TAG_FALLBACK: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;

impl Payload for DriverMsg {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            DriverMsg::Run(spec) => {
                enc.put_u8(TAG_RUN);
                spec.encode_into(enc);
            }
            DriverMsg::Fallback { id, spec, parts } => {
                enc.put_u8(TAG_FALLBACK);
                enc.put_u64(*id);
                spec.encode_into(enc);
                enc.put_u64_slice(parts);
            }
            DriverMsg::Shutdown => enc.put_u8(TAG_SHUTDOWN),
        }
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        match dec.get_u8()? {
            TAG_RUN => Ok(DriverMsg::Run(JobSpec::decode_from(dec)?)),
            TAG_FALLBACK => Ok(DriverMsg::Fallback {
                id: dec.get_u64()?,
                spec: JobSpec::decode_from(dec)?,
                parts: dec.get_u64_vec()?,
            }),
            TAG_SHUTDOWN => Ok(DriverMsg::Shutdown),
            tag => Err(NetError::Codec(format!("invalid DriverMsg tag {tag}"))),
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            DriverMsg::Run(spec) => 1 + spec.size_hint(),
            DriverMsg::Fallback { spec, parts, .. } => 1 + 8 + spec.size_hint() + 8 + 8 * parts.len(),
            DriverMsg::Shutdown => 1,
        }
    }
}

/// Executor → driver control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecMsg {
    /// Ring completed: the `(global index, encoded segment)` pairs this rank
    /// owns — the gather half of split aggregation.
    JobOk {
        /// Job id.
        id: u64,
        /// Owned segments, encoded as the job's segment type.
        segments: Vec<(u64, ByteBuf)>,
    },
    /// The job failed on this rank (transport error or injected).
    JobErr {
        /// Job id.
        id: u64,
        /// Human-readable cause (a [`NetError`] rendering).
        error: String,
    },
    /// Fallback aggregator covering the assigned partitions.
    FallbackOk {
        /// Job id.
        id: u64,
        /// The full local aggregator.
        agg: Vec<f64>,
    },
}

const TAG_JOB_OK: u8 = 1;
const TAG_JOB_ERR: u8 = 2;
const TAG_FALLBACK_OK: u8 = 3;

impl Payload for ExecMsg {
    fn encode_into(&self, enc: &mut Encoder) {
        match self {
            ExecMsg::JobOk { id, segments } => {
                enc.put_u8(TAG_JOB_OK);
                enc.put_u64(*id);
                enc.put_usize(segments.len());
                for (index, bytes) in segments {
                    enc.put_u64(*index);
                    enc.put_bytes(bytes);
                }
            }
            ExecMsg::JobErr { id, error } => {
                enc.put_u8(TAG_JOB_ERR);
                enc.put_u64(*id);
                enc.put_str(error);
            }
            ExecMsg::FallbackOk { id, agg } => {
                enc.put_u8(TAG_FALLBACK_OK);
                enc.put_u64(*id);
                enc.put_f64_slice(agg);
            }
        }
    }

    fn decode_from(dec: &mut Decoder) -> NetResult<Self> {
        match dec.get_u8()? {
            TAG_JOB_OK => {
                let id = dec.get_u64()?;
                let count = dec.get_usize()?;
                let mut segments = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let index = dec.get_u64()?;
                    let bytes = dec.get_bytes()?;
                    segments.push((index, bytes));
                }
                Ok(ExecMsg::JobOk { id, segments })
            }
            TAG_JOB_ERR => Ok(ExecMsg::JobErr { id: dec.get_u64()?, error: dec.get_string()? }),
            TAG_FALLBACK_OK => {
                Ok(ExecMsg::FallbackOk { id: dec.get_u64()?, agg: dec.get_f64_vec()? })
            }
            tag => Err(NetError::Codec(format!("invalid ExecMsg tag {tag}"))),
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            ExecMsg::JobOk { segments, .. } => {
                1 + 8 + 8 + segments.iter().map(|(_, b)| 8 + 8 + b.len()).sum::<usize>()
            }
            ExecMsg::JobErr { error, .. } => 1 + 8 + 8 + error.len(),
            ExecMsg::FallbackOk { agg, .. } => 1 + 8 + 8 + 8 * agg.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic dataset: partitions as pure functions of (seed, part).
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The vector contributed by partition `part` — deterministic, so any
/// executor can recompute any partition (the lineage property fallback
/// recovery rests on). Values are small integers: `f64` sums of integers
/// this size are exact in every association order, which is what makes
/// "bit-exact across ring, tree, and oracle" a meaningful acceptance check.
pub fn part_vector(seed: u64, part: u64, dim: usize, density: f64) -> Vec<f64> {
    let mut v = vec![0.0; dim];
    if dim == 0 {
        return v;
    }
    let nnz = (((dim as f64) * density).ceil() as usize).clamp(1, dim.max(1));
    let base = splitmix64(seed ^ splitmix64(part.wrapping_add(1)));
    for k in 0..nnz {
        let h = splitmix64(base.wrapping_add(k as u64));
        let idx = (h % dim as u64) as usize;
        let val = ((h >> 32) % 512) as f64 + 1.0;
        v[idx] += val;
    }
    v
}

/// Driver-side expected value: the sum of every partition vector.
pub fn oracle(spec: &JobSpec) -> Vec<f64> {
    let mut out = vec![0.0; spec.dim];
    for part in 0..spec.total_parts as u64 {
        for (o, x) in out.iter_mut().zip(part_vector(spec.seed, part, spec.dim, spec.density)) {
            *o += x;
        }
    }
    out
}

fn local_aggregate(spec: &JobSpec, parts: &[u64]) -> Vec<f64> {
    let mut agg = vec![0.0; spec.dim];
    for &part in parts {
        for (a, x) in agg.iter_mut().zip(part_vector(spec.seed, part, spec.dim, spec.density)) {
            *a += x;
        }
    }
    agg
}

/// Splits `agg` into `count` contiguous segments of ceil(dim/count) (the
/// tail may be shorter or empty). Same layout on every rank and the driver.
fn split_segments(agg: &[f64], count: usize) -> Vec<Vec<f64>> {
    let seg_len = segment_len(agg.len(), count);
    (0..count)
        .map(|i| {
            let lo = (i * seg_len).min(agg.len());
            let hi = ((i + 1) * seg_len).min(agg.len());
            agg[lo..hi].to_vec()
        })
        .collect()
}

fn segment_len(dim: usize, count: usize) -> usize {
    dim.div_ceil(count.max(1))
}

fn mesh_infos(n: usize) -> Vec<ExecutorInfo> {
    (0..n)
        .map(|i| ExecutorInfo {
            id: ExecutorId(i as u32),
            host: format!("proc-{i:03}"),
            node: i,
            cores: 1,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Executor side
// ---------------------------------------------------------------------------

/// Joins the cluster at `driver_addr` and serves jobs until the driver sends
/// [`DriverMsg::Shutdown`] (or hangs up). The executor-process main loop.
pub fn run_executor(driver_addr: &str, join_timeout: Duration) -> NetResult<()> {
    let joined = rendezvous::join(driver_addr, join_timeout)?;
    serve(joined)
}

/// Serves jobs on an already-joined membership (exposed so tests can run
/// executors as threads).
pub fn serve(mut joined: Joined) -> NetResult<()> {
    loop {
        let payload = match joined.control.recv(Duration::from_secs(600)) {
            Ok(p) => p,
            Err(NetError::Timeout) => continue,
            // Driver gone: nothing left to serve.
            Err(NetError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        };
        match DriverMsg::from_frame(payload)? {
            DriverMsg::Run(spec) => {
                let reply = run_job(&joined, &spec);
                joined.control.send(&reply.to_frame())?;
            }
            DriverMsg::Fallback { id, spec, parts } => {
                let agg = local_aggregate(&spec, &parts);
                joined.control.send(&ExecMsg::FallbackOk { id, agg }.to_frame())?;
            }
            DriverMsg::Shutdown => return Ok(()),
        }
    }
}

fn run_job(joined: &Joined, spec: &JobSpec) -> ExecMsg {
    let rank = joined.rank;
    let n = joined.n;
    if spec.assigned.len() != n || spec.parallelism > joined.channels {
        return ExecMsg::JobErr {
            id: spec.id,
            error: format!(
                "spec shape mismatch: {} assignments for {n} ranks, P={} over {} channels",
                spec.assigned.len(),
                spec.parallelism,
                joined.channels
            ),
        };
    }
    let agg = local_aggregate(spec, &spec.assigned[rank]);

    let ring = Arc::new(RingTopology::new(mesh_infos(n), RingOrder::ById, spec.parallelism));
    let net: Arc<dyn Transport> = joined.transport.clone();
    let comm = RingComm::new(net, ring, rank)
        .with_epoch(spec.id, spec.attempt)
        .with_recv_deadline(Duration::from_millis(spec.recv_deadline_ms));

    // Injected transient failure: leave well-formed frames of this (doomed)
    // attempt on the wire, then report failure. The retry proves the epoch
    // fence rejects them across real sockets.
    if spec.attempt == 0 && spec.fail_rank == rank as u32 {
        for ch in 0..spec.parallelism {
            let _ = comm.send_next(ch, ByteBuf::from_static(b"stale attempt-0 frame"));
        }
        return ExecMsg::JobErr { id: spec.id, error: "injected failure (fail_rank)".into() };
    }
    // Injected death: first frame goes out, then the process vanishes
    // mid-collective. Peers must observe Disconnected, not a hang.
    if spec.attempt == 0 && spec.die_rank == rank as u32 {
        let _ = comm.send_next(0, ByteBuf::from_static(b"dying mid-ring"));
        std::process::exit(KILLED_EXIT_CODE);
    }

    let seg_count = spec.parallelism * n * spec.chunks;
    let result: NetResult<Vec<(u64, ByteBuf)>> = if spec.sparse {
        let segs: Vec<DenseOrSparse> = split_segments(&agg, seg_count)
            .into_iter()
            .map(|v| DenseOrSparse::from_dense(v, spec.threshold))
            .collect();
        ring_reduce_scatter_chunked_by(
            &comm,
            segs,
            &|a: &mut DenseOrSparse, b: DenseOrSparse| a.merge(&b),
            spec.chunks,
        )
        .map(|owned| {
            owned.into_iter().map(|o| (o.index as u64, o.segment.to_frame())).collect()
        })
    } else {
        let segs: Vec<F64Array> =
            split_segments(&agg, seg_count).into_iter().map(F64Array).collect();
        ring_reduce_scatter_chunked_by(
            &comm,
            segs,
            &|a: &mut F64Array, b: F64Array| {
                debug_assert_eq!(a.0.len(), b.0.len());
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            spec.chunks,
        )
        .map(|owned| {
            owned.into_iter().map(|o| (o.index as u64, o.segment.to_frame())).collect()
        })
    };

    match result {
        Ok(segments) => ExecMsg::JobOk { id: spec.id, segments },
        Err(e) => ExecMsg::JobErr { id: spec.id, error: e.to_string() },
    }
}

// ---------------------------------------------------------------------------
// Driver side
// ---------------------------------------------------------------------------

/// Result of one driver-orchestrated job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The aggregated vector (length `dim`).
    pub value: Vec<f64>,
    /// Gang attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the tree fallback produced the result.
    pub used_fallback: bool,
    /// Owned segments gathered over the control plane (ring path only).
    pub wire_segments: usize,
    /// Encoded segment bytes gathered from executors (ring path only).
    pub result_bytes: u64,
}

/// The multi-process driver: owns the control connections, dispatches jobs,
/// decides between gang retry and tree fallback.
pub struct MultiProcDriver {
    controls: Vec<Option<ControlConn>>,
    /// Gang attempts before giving up on the ring path.
    pub max_attempts: u32,
    /// How long to wait for each executor's reply to a job.
    pub reply_timeout: Duration,
}

impl MultiProcDriver {
    /// Wraps the control connections returned by
    /// [`rendezvous::Coordinator::wait_for`].
    pub fn new(controls: Vec<ControlConn>) -> Self {
        Self {
            controls: controls.into_iter().map(Some).collect(),
            max_attempts: 4,
            reply_timeout: Duration::from_secs(60),
        }
    }

    /// Total executors the cluster started with.
    pub fn size(&self) -> usize {
        self.controls.len()
    }

    /// Ranks whose control connection is still alive.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.controls.len()).filter(|&r| self.controls[r].is_some()).collect()
    }

    fn send_to(&mut self, rank: usize, msg: &DriverMsg) {
        let failed = match &mut self.controls[rank] {
            Some(conn) => conn.send(&msg.to_frame()).is_err(),
            None => false,
        };
        if failed {
            self.controls[rank] = None;
        }
    }

    fn recv_from(&mut self, rank: usize) -> Option<ExecMsg> {
        let timeout = self.reply_timeout;
        let result = match &mut self.controls[rank] {
            Some(conn) => match conn.recv(timeout) {
                Ok(payload) => ExecMsg::from_frame(payload).ok(),
                Err(_) => None,
            },
            None => return None,
        };
        if result.is_none() {
            // Timeout, disconnect, or garbage: this control link is done.
            self.controls[rank] = None;
        }
        result
    }

    /// Runs one job to completion: gang attempts over the ring while every
    /// executor lives, tree fallback once one has died. `Err` only when no
    /// exact result can be produced at all.
    pub fn run_job(&mut self, base: &JobSpec) -> Result<JobOutcome, String> {
        let n = self.size();
        let mut attempts = 0;
        while attempts < self.max_attempts && self.alive().len() == n {
            let mut spec = base.clone();
            spec.attempt = attempts;
            spec.assigned = assign_parts(base.total_parts, &(0..n).collect::<Vec<_>>(), n);
            attempts += 1;
            for rank in 0..n {
                self.send_to(rank, &DriverMsg::Run(spec.clone()));
            }
            let mut oks: Vec<Vec<(u64, ByteBuf)>> = Vec::new();
            for rank in 0..n {
                match self.recv_from(rank) {
                    Some(ExecMsg::JobOk { id, segments }) if id == spec.id => oks.push(segments),
                    Some(_) | None => {}
                }
            }
            if oks.len() == n {
                let (value, wire_segments, result_bytes) = assemble(base, n, oks)?;
                return Ok(JobOutcome {
                    value,
                    attempts,
                    used_fallback: false,
                    wire_segments,
                    result_bytes,
                });
            }
        }

        // Tree fallback: survivors recompute everything from lineage.
        let survivors = self.alive();
        if survivors.is_empty() {
            return Err(format!("job {}: no executors left for fallback", base.id));
        }
        let assigned = assign_parts(base.total_parts, &survivors, self.size());
        for &rank in &survivors {
            self.send_to(
                rank,
                &DriverMsg::Fallback {
                    id: base.id,
                    spec: base.clone(),
                    parts: assigned[rank].clone(),
                },
            );
        }
        let mut aggs = Vec::with_capacity(survivors.len());
        for &rank in &survivors {
            match self.recv_from(rank) {
                Some(ExecMsg::FallbackOk { id, agg }) if id == base.id && agg.len() == base.dim => {
                    aggs.push(agg);
                }
                other => {
                    return Err(format!(
                        "job {}: fallback reply from rank {rank} was {other:?}",
                        base.id
                    ));
                }
            }
        }
        Ok(JobOutcome {
            value: tree_merge(aggs),
            attempts: attempts + 1,
            used_fallback: true,
            wire_segments: 0,
            result_bytes: 0,
        })
    }

    /// Sends a clean shutdown to every surviving executor.
    pub fn shutdown(&mut self) {
        for rank in 0..self.size() {
            self.send_to(rank, &DriverMsg::Shutdown);
        }
    }
}

/// Round-robins partitions over `ranks`, returning a per-rank (of `n_total`)
/// assignment; ranks not listed get no partitions.
fn assign_parts(total_parts: usize, ranks: &[usize], n_total: usize) -> Vec<Vec<u64>> {
    let mut assigned = vec![Vec::new(); n_total];
    for part in 0..total_parts as u64 {
        let rank = ranks[(part as usize) % ranks.len()];
        assigned[rank].push(part);
    }
    assigned
}

/// Reassembles gathered segments into the full vector, checking that every
/// global index arrived exactly once.
fn assemble(
    spec: &JobSpec,
    n: usize,
    replies: Vec<Vec<(u64, ByteBuf)>>,
) -> Result<(Vec<f64>, usize, u64), String> {
    let seg_count = spec.parallelism * n * spec.chunks;
    let seg_len = segment_len(spec.dim, seg_count);
    let mut value = vec![0.0; spec.dim];
    let mut seen = vec![false; seg_count];
    let mut wire_segments = 0usize;
    let mut result_bytes = 0u64;
    for segments in replies {
        for (index, bytes) in segments {
            let index = index as usize;
            if index >= seg_count || seen[index] {
                return Err(format!(
                    "job {}: segment {index} out of range or duplicated",
                    spec.id
                ));
            }
            seen[index] = true;
            wire_segments += 1;
            result_bytes += bytes.len() as u64;
            let dense = if spec.sparse {
                DenseOrSparse::from_frame(bytes).map_err(|e| e.to_string())?.into_dense()
            } else {
                F64Array::from_frame(bytes).map_err(|e| e.to_string())?.0
            };
            let lo = (index * seg_len).min(spec.dim);
            let hi = (lo + dense.len()).min(spec.dim);
            if hi - lo != dense.len() {
                return Err(format!(
                    "job {}: segment {index} length {} overflows dim {}",
                    spec.id,
                    dense.len(),
                    spec.dim
                ));
            }
            value[lo..hi].copy_from_slice(&dense);
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(format!("job {}: segment {missing} never arrived", spec.id));
    }
    Ok((value, wire_segments, result_bytes))
}

/// Pairwise (log-depth) merge of whole aggregators — the tree the fallback
/// path degrades to.
fn tree_merge(mut aggs: Vec<Vec<f64>>) -> Vec<f64> {
    while aggs.len() > 1 {
        let mut next = Vec::with_capacity(aggs.len().div_ceil(2));
        let mut it = aggs.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            next.push(a);
        }
        aggs = next;
    }
    aggs.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparker_net::tcp::rendezvous::Coordinator;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Spins up a driver plus `n` executor threads joined over real loopback
    /// TCP, runs `jobs` through them, and returns the outcomes.
    fn run_cluster(n: usize, channels: usize, jobs: Vec<JobSpec>) -> Vec<JobOutcome> {
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap().to_string();
        let mut execs = Vec::new();
        for _ in 0..n {
            let addr = addr.clone();
            execs.push(std::thread::spawn(move || {
                run_executor(&addr, Duration::from_secs(20)).unwrap();
            }));
        }
        let controls = coordinator.wait_for(n, channels, Duration::from_secs(20)).unwrap();
        let mut driver = MultiProcDriver::new(controls);
        driver.reply_timeout = Duration::from_secs(30);
        let outcomes: Vec<JobOutcome> =
            jobs.iter().map(|j| driver.run_job(j).unwrap()).collect();
        driver.shutdown();
        for e in execs {
            e.join().unwrap();
        }
        outcomes
    }

    #[test]
    fn dense_job_is_bit_exact() {
        let spec = JobSpec::dense(11, 0xD5EED, 4096, 9);
        let outcomes = run_cluster(3, 2, vec![spec.clone()]);
        let o = &outcomes[0];
        assert_eq!(o.attempts, 1);
        assert!(!o.used_fallback);
        assert_eq!(o.wire_segments, 2 * 3 * 2);
        assert_eq!(bits(&o.value), bits(&oracle(&spec)));
    }

    #[test]
    fn sparse_job_is_bit_exact_and_cheaper_on_the_wire() {
        let dim = 8192;
        let sparse = JobSpec::sparse(21, 0x5EED5, dim, 9, 0.01);
        let mut dense = sparse.clone();
        dense.id = 22;
        dense.sparse = false;
        let outcomes = run_cluster(3, 2, vec![sparse.clone(), dense]);
        assert_eq!(bits(&outcomes[0].value), bits(&oracle(&sparse)));
        assert_eq!(bits(&outcomes[1].value), bits(&outcomes[0].value));
        assert!(
            outcomes[0].result_bytes * 3 < outcomes[1].result_bytes,
            "sparse gather ({} B) should be well under dense ({} B)",
            outcomes[0].result_bytes,
            outcomes[1].result_bytes
        );
    }

    #[test]
    fn injected_failure_retries_and_fences_stale_frames() {
        let mut spec = JobSpec::dense(31, 0xFA11, 2048, 6);
        spec.fail_rank = 1;
        spec.recv_deadline_ms = 700;
        let outcomes = run_cluster(3, 2, vec![spec.clone()]);
        let o = &outcomes[0];
        assert_eq!(o.attempts, 2, "attempt 0 must fail, attempt 1 succeed");
        assert!(!o.used_fallback);
        assert_eq!(bits(&o.value), bits(&oracle(&spec)));
    }

    #[test]
    fn payloads_roundtrip() {
        let spec = JobSpec::sparse(7, 9, 100, 4, 0.5);
        let mut with_assign = spec.clone();
        with_assign.assigned = vec![vec![0, 3], vec![1], vec![2]];
        for msg in [
            DriverMsg::Run(with_assign.clone()),
            DriverMsg::Fallback { id: 7, spec: with_assign, parts: vec![0, 1, 2, 3] },
            DriverMsg::Shutdown,
        ] {
            let back = DriverMsg::from_frame(msg.to_frame()).unwrap();
            assert_eq!(back, msg);
        }
        for msg in [
            ExecMsg::JobOk {
                id: 1,
                segments: vec![(0, ByteBuf::from_static(b"seg0")), (5, ByteBuf::new())],
            },
            ExecMsg::JobErr { id: 2, error: "peer disconnected".into() },
            ExecMsg::FallbackOk { id: 3, agg: vec![1.0, 2.0, 3.0] },
        ] {
            let frame = msg.to_frame();
            assert_eq!(frame.len(), msg.size_hint(), "size_hint must be exact");
            let back = ExecMsg::from_frame(frame).unwrap();
            match (&back, &msg) {
                (ExecMsg::JobOk { id: a, segments: sa }, ExecMsg::JobOk { id: b, segments: sb }) => {
                    assert_eq!(a, b);
                    assert_eq!(sa.len(), sb.len());
                    for ((ia, ba), (ib, bb)) in sa.iter().zip(sb) {
                        assert_eq!(ia, ib);
                        assert_eq!(&ba[..], &bb[..]);
                    }
                }
                _ => assert_eq!(back, msg),
            }
        }
    }

    #[test]
    fn oracle_matches_manual_sum() {
        let spec = JobSpec::dense(1, 42, 64, 5);
        let mut manual = vec![0.0; 64];
        for p in 0..5 {
            for (m, x) in manual.iter_mut().zip(part_vector(42, p, 64, 1.0)) {
                *m += x;
            }
        }
        assert_eq!(bits(&oracle(&spec)), bits(&manual));
    }
}
