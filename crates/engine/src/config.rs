//! Cluster specifications.
//!
//! A [`ClusterSpec`] is the engine-level mirror of the paper's Table 1 rows:
//! node count, executors per node, cores per executor, plus the network
//! profile, BlockManager control costs, serializer model and PDR settings.
//! Presets cover the two evaluation clusters and an unshaped local spec for
//! tests.

use std::sync::Arc;
use std::time::Duration;

use sparker_net::blockmanager::BlockManagerCosts;
use sparker_net::fault::NetFaultPlan;
use sparker_net::profile::NetProfile;
use sparker_net::topology::RingOrder;

use crate::cost::CostModel;

/// Generous default: local stages finish in milliseconds, so a wait this
/// long only ever fires on a genuine hang.
const DEFAULT_STAGE_TIMEOUT: Duration = Duration::from_secs(300);
/// Spark's `spark.task.maxFailures` default.
const DEFAULT_MAX_TASK_ATTEMPTS: u32 = 4;
/// Gang resubmits before a collective degrades to the tree fallback.
const DEFAULT_MAX_COLLECTIVE_ATTEMPTS: u32 = 4;
/// Per-receive deadline inside a collective; bounds how long a ring blocks
/// on a dead neighbour.
const DEFAULT_COLLECTIVE_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Full configuration of a [`crate::cluster::LocalCluster`].
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Physical nodes (the driver occupies an additional implicit node).
    pub nodes: usize,
    /// Executors per node (paper: 6 on BIC, 12 on AWS).
    pub executors_per_node: usize,
    /// Concurrent task slots per executor (paper: 4 on BIC, 8 on AWS).
    pub cores_per_executor: usize,
    /// Network shaping shared by all transports.
    pub profile: NetProfile,
    /// Control-plane costs of the BlockManager-class paths (task results,
    /// tree-aggregation shuffle).
    pub bm_costs: BlockManagerCosts,
    /// Modeled serializer.
    pub cost: CostModel,
    /// Rank policy of the parallel directed ring.
    pub ring_order: RingOrder,
    /// PDR channel parallelism (the paper settles on 4, §5.2.2).
    pub ring_parallelism: usize,
    /// Default `treeAggregate` depth (Spark's default is 2).
    pub tree_depth: usize,
    /// Upper bound on one stage attempt (driver-side wait per task result).
    pub stage_timeout: Duration,
    /// Per-task retry budget under `RecoveryPolicy::RetryTask` (and the
    /// resubmit budget of `ResubmitStage`).
    pub max_task_attempts: u32,
    /// Gang resubmit budget of `RecoveryPolicy::ResubmitGang` before a
    /// collective op degrades to its fallback path.
    pub max_collective_attempts: u32,
    /// Deadline on each collective receive: how long a ring task waits on a
    /// silent neighbour before failing the gang with a timeout.
    pub collective_recv_timeout: Duration,
    /// Optional deterministic fault plan wrapped around the scalable
    /// communicator (the collectives' transport); `None` leaves it clean.
    pub sc_fault: Option<Arc<NetFaultPlan>>,
}

impl ClusterSpec {
    /// Unshaped local cluster: fastest possible, for correctness tests.
    pub fn local(executors: usize, cores_per_executor: usize) -> Self {
        Self {
            nodes: 1,
            executors_per_node: executors,
            cores_per_executor,
            profile: NetProfile::unshaped(),
            bm_costs: BlockManagerCosts {
                control_rpc: std::time::Duration::ZERO,
                poll_quantum: std::time::Duration::ZERO,
            },
            cost: CostModel::free(),
            ring_order: RingOrder::TopologyAware,
            ring_parallelism: 2,
            tree_depth: 2,
            stage_timeout: DEFAULT_STAGE_TIMEOUT,
            max_task_attempts: DEFAULT_MAX_TASK_ATTEMPTS,
            max_collective_attempts: DEFAULT_MAX_COLLECTIVE_ATTEMPTS,
            collective_recv_timeout: DEFAULT_COLLECTIVE_RECV_TIMEOUT,
            sc_fault: None,
        }
    }

    /// Paper's BIC cluster (Table 1), shrunk by `nodes` and time-scaled.
    ///
    /// `time_scale < 1` is not supported here — pass the factor by which to
    /// *slow* the network so that proportionally smaller messages reproduce
    /// full-size behaviour (see `NetProfile::scaled`). Use `1.0` for
    /// unscaled shaping.
    pub fn bic(nodes: usize, time_scale: f64) -> Self {
        Self {
            nodes,
            executors_per_node: 6,
            cores_per_executor: 4,
            profile: NetProfile::bic().scaled(time_scale),
            bm_costs: BlockManagerCosts::default(),
            cost: CostModel::jvm_class().scaled(time_scale),
            ring_order: RingOrder::TopologyAware,
            ring_parallelism: 4,
            tree_depth: 2,
            stage_timeout: DEFAULT_STAGE_TIMEOUT,
            max_task_attempts: DEFAULT_MAX_TASK_ATTEMPTS,
            max_collective_attempts: DEFAULT_MAX_COLLECTIVE_ATTEMPTS,
            collective_recv_timeout: DEFAULT_COLLECTIVE_RECV_TIMEOUT,
            sc_fault: None,
        }
    }

    /// Paper's AWS cluster (Table 1), shrunk by `nodes` and time-scaled.
    pub fn aws(nodes: usize, time_scale: f64) -> Self {
        Self {
            nodes,
            executors_per_node: 12,
            cores_per_executor: 8,
            profile: NetProfile::aws().scaled(time_scale),
            bm_costs: BlockManagerCosts::default(),
            cost: CostModel::jvm_class().scaled(time_scale),
            ring_order: RingOrder::TopologyAware,
            ring_parallelism: 4,
            tree_depth: 2,
            stage_timeout: DEFAULT_STAGE_TIMEOUT,
            max_task_attempts: DEFAULT_MAX_TASK_ATTEMPTS,
            max_collective_attempts: DEFAULT_MAX_COLLECTIVE_ATTEMPTS,
            collective_recv_timeout: DEFAULT_COLLECTIVE_RECV_TIMEOUT,
            sc_fault: None,
        }
    }

    /// Total executor count.
    pub fn num_executors(&self) -> usize {
        self.nodes * self.executors_per_node
    }

    /// Total core slots across the cluster.
    pub fn total_cores(&self) -> usize {
        self.num_executors() * self.cores_per_executor
    }

    /// Builder-style override of the ring rank policy.
    pub fn with_ring_order(mut self, order: RingOrder) -> Self {
        self.ring_order = order;
        self
    }

    /// Builder-style override of PDR parallelism.
    pub fn with_ring_parallelism(mut self, p: usize) -> Self {
        assert!(p >= 1);
        self.ring_parallelism = p;
        self
    }

    /// Builder-style override of the serializer model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style override of executor shape (for scaled-down benches).
    pub fn with_shape(mut self, executors_per_node: usize, cores_per_executor: usize) -> Self {
        assert!(executors_per_node >= 1 && cores_per_executor >= 1);
        self.executors_per_node = executors_per_node;
        self.cores_per_executor = cores_per_executor;
        self
    }

    /// Builder-style override of the per-stage-attempt deadline.
    pub fn with_stage_timeout(mut self, timeout: Duration) -> Self {
        self.stage_timeout = timeout;
        self
    }

    /// Builder-style override of the per-task retry budget.
    pub fn with_max_task_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1);
        self.max_task_attempts = attempts;
        self
    }

    /// Builder-style override of the gang resubmit budget.
    pub fn with_max_collective_attempts(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1);
        self.max_collective_attempts = attempts;
        self
    }

    /// Builder-style override of the collective receive deadline.
    pub fn with_collective_recv_timeout(mut self, timeout: Duration) -> Self {
        self.collective_recv_timeout = timeout;
        self
    }

    /// Builder-style injection of a scalable-communicator fault plan.
    pub fn with_sc_fault(mut self, plan: NetFaultPlan) -> Self {
        self.sc_fault = Some(Arc::new(plan));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes() {
        let bic = ClusterSpec::bic(8, 1.0);
        assert_eq!(bic.num_executors(), 48);
        assert_eq!(bic.total_cores(), 192);
        let aws = ClusterSpec::aws(10, 1.0);
        assert_eq!(aws.num_executors(), 120);
        assert_eq!(aws.total_cores(), 960);
    }

    #[test]
    fn local_spec_is_unshaped_and_free() {
        let s = ClusterSpec::local(4, 2);
        assert_eq!(s.num_executors(), 4);
        assert!(s.profile.inter_node.bandwidth.is_infinite());
        assert!(s.cost.ser_bandwidth.is_infinite());
        assert_eq!(s.bm_costs.control_rpc, std::time::Duration::ZERO);
    }

    #[test]
    fn builders_override() {
        let s = ClusterSpec::local(2, 1)
            .with_ring_parallelism(8)
            .with_shape(3, 5)
            .with_ring_order(RingOrder::ById);
        assert_eq!(s.ring_parallelism, 8);
        assert_eq!(s.num_executors(), 3);
        assert_eq!(s.cores_per_executor, 5);
        assert_eq!(s.ring_order, RingOrder::ById);
    }

    #[test]
    #[should_panic]
    fn zero_parallelism_rejected() {
        ClusterSpec::local(1, 1).with_ring_parallelism(0);
    }
}
