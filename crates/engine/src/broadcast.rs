//! Broadcast variables.
//!
//! Every training iteration Spark broadcasts the current model to all
//! executors (torrent broadcast); the paper counts this in the "Non-agg"
//! component and the LDA workloads broadcast the whole K × V topic matrix.
//! This module gives the threaded engine the same mechanism and the same
//! costs: the driver serializes the value **once** (modeled serializer),
//! ships one copy to every executor over the BlockManager-class transport
//! (shaped: driver egress NIC serializes the copies, like the torrent
//! seed-out), and each executor deserializes and pins it in its mutable
//! object manager.
//!
//! Tasks read the executor-local copy through [`Broadcast::value`], which
//! resolves the current executor via the thread-local task context — the
//! engine's analogue of Spark's `Broadcast.value` + `TaskContext.get()`.
//! On the driver thread, `value()` returns the driver's own copy.

use std::sync::Arc;

use sparker_net::codec::Payload;
use sparker_net::topology::ExecutorId;

use crate::cluster::{LocalCluster, RecoveryPolicy};
use crate::objects::ObjectId;
use crate::rdd::current_task_context;
use crate::task::{EngineResult, TaskFailure};

/// Slot where an executor pins its copy of broadcast `op`.
const fn broadcast_slot(op: u64) -> ObjectId {
    ObjectId { op, slot: 1 << 40 }
}

/// A value replicated to every executor. Cheap to clone; all clones refer
/// to the same replicated copies.
pub struct Broadcast<T> {
    cluster: LocalCluster,
    op: u64,
    driver_copy: Arc<T>,
    /// Serialized size of one copy (for accounting).
    pub frame_bytes: usize,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Self {
            cluster: self.cluster.clone(),
            op: self.op,
            driver_copy: self.driver_copy.clone(),
            frame_bytes: self.frame_bytes,
        }
    }
}

impl LocalCluster {
    /// Replicates `value` to every executor. Returns once all executors
    /// hold their copy.
    pub fn broadcast<T>(&self, value: T) -> EngineResult<Broadcast<T>>
    where
        T: Payload + Clone + Send + Sync + 'static,
    {
        let inner = self.inner().clone();
        let _action = inner.lock_action();
        let op = inner.next_op();
        // Serialize once at the driver (the torrent seed).
        let frame = value.to_frame();
        let frame_bytes = frame.len();
        inner.charge_driver_ser(frame_bytes);
        // Seed one copy per executor through the shaped BM transport.
        for e in 0..inner.num_executors() {
            inner.bm_send_raw_from_driver(ExecutorId(e as u32), frame.clone())?;
        }
        // Each executor receives, deserializes and pins its copy.
        let assignments: Vec<ExecutorId> =
            (0..inner.num_executors()).map(|e| ExecutorId(e as u32)).collect();
        let recv_inner = inner.clone();
        let driver_id = inner.driver_id();
        inner.run_stage(
            &format!("broadcast-op{op}"),
            &assignments,
            move |_idx, _attempt, ctx| {
                let frame = recv_inner.bm_recv(ctx.executor, driver_id)?;
                let v = T::from_frame(frame).map_err(TaskFailure::from)?;
                ctx.objects.merge_in(broadcast_slot(op), Arc::new(v), |a, b| *a = b);
                Ok(())
            },
            RecoveryPolicy::RetryTask,
        )?;
        Ok(Broadcast { cluster: self.clone(), op, driver_copy: Arc::new(value), frame_bytes })
    }
}

impl<T: Send + Sync + 'static> Broadcast<T> {
    /// The local replica: the current executor's copy when called from a
    /// task, the driver's copy otherwise.
    pub fn value(&self) -> Arc<T> {
        if let Some(ctx) = current_task_context() {
            if let Some(v) = ctx.objects.with(broadcast_slot(self.op), |v: &Arc<T>| v.clone()) {
                return v;
            }
        }
        self.driver_copy.clone()
    }

    /// Drops every executor's replica (Spark's `Broadcast.destroy`). The
    /// driver copy (and any `Arc`s already handed out) stay alive.
    pub fn destroy(&self) {
        let inner = self.cluster.inner();
        for e in 0..inner.num_executors() {
            inner.executor_ctx(ExecutorId(e as u32)).objects.clear_op(self.op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterSpec;
    use sparker_net::codec::F64Array;

    #[test]
    fn tasks_read_the_executor_local_replica() {
        let cluster = LocalCluster::new(ClusterSpec::local(3, 2));
        let bc = cluster.broadcast(F64Array(vec![1.0, 2.0, 3.0])).unwrap();
        // A spawn task on each executor reads through the broadcast.
        let sums = cluster
            .spawn({
                let bc = bc.clone();
                move |_split, _ctx| vec![bc.value().0.iter().sum::<f64>()]
            })
            .collect()
            .unwrap();
        assert_eq!(sums, vec![6.0, 6.0, 6.0]);
    }

    #[test]
    fn driver_reads_its_own_copy() {
        let cluster = LocalCluster::new(ClusterSpec::local(2, 1));
        let bc = cluster.broadcast(42u64).unwrap();
        assert_eq!(*bc.value(), 42);
    }

    #[test]
    fn replicas_live_in_executor_object_managers() {
        let cluster = LocalCluster::new(ClusterSpec::local(2, 1));
        let bc = cluster.broadcast(7u64).unwrap();
        for e in 0..2u32 {
            let objects = cluster.executor_objects(ExecutorId(e));
            assert_eq!(objects.len(), 1, "executor {e} holds its replica");
        }
        bc.destroy();
        for e in 0..2u32 {
            assert!(cluster.executor_objects(ExecutorId(e)).is_empty());
        }
        // Driver copy survives destroy.
        assert_eq!(*bc.value(), 7);
    }

    #[test]
    fn frame_bytes_accounts_the_payload() {
        let cluster = LocalCluster::new(ClusterSpec::local(1, 1));
        let bc = cluster.broadcast(F64Array(vec![0.0; 1000])).unwrap();
        assert_eq!(bc.frame_bytes, 8 + 8 * 1000);
    }

    #[test]
    fn broadcast_then_aggregate_uses_fresh_values_per_iteration() {
        // The GD pattern: broadcast weights, aggregate with them, repeat.
        let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
        let data = cluster.generate(4, |p| vec![p as u64]).cache();
        data.count().unwrap();
        let mut expected_scale = 1.0;
        for iter in 1..=3u64 {
            let bc = cluster.broadcast(iter as f64).unwrap();
            let bc2 = bc.clone();
            let (sum, _) = data
                .tree_aggregate(
                    0.0f64,
                    move |acc, x| acc + *x as f64 * *bc2.value(),
                    |a, b| a + b,
                    crate::ops::tree_aggregate::TreeAggOpts::default(),
                )
                .unwrap();
            assert_eq!(sum, 6.0 * expected_scale, "iteration {iter}");
            expected_scale += 1.0;
            bc.destroy();
        }
    }
}
