//! Modeled serializer cost.
//!
//! Spark pays a heavy CPU cost to serialize task results and shuffle data
//! (the paper cites Ousterhout et al.: "serialization may dominate Spark's
//! overhead", and In-Memory Merge exists to avoid it). Our Rust codec is a
//! near-memcpy, so to preserve the paper's trade-off the engine charges a
//! *modeled* serializer throughput at every encode/decode boundary: the
//! worker thread that serializes an aggregator stays busy for
//! `bytes / ser_bandwidth` seconds, just as a JVM core running Kryo would.
//!
//! The charge is real wall-clock occupancy of a core slot (not bookkeeping),
//! so serialization contends with computation exactly like in Spark.

use std::time::Duration;

use sparker_net::time::wait_for;

/// Serializer throughput model, in bytes/sec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Modeled serialization throughput (JVM-class default ≈ 700 MB/s).
    pub ser_bandwidth: f64,
    /// Modeled deserialization throughput (≈ 900 MB/s).
    pub deser_bandwidth: f64,
    /// Fixed per-object overhead on either operation (object graph walk,
    /// class resolution). Applied once per encode/decode call.
    pub per_object_overhead: Duration,
}

const MB: f64 = 1024.0 * 1024.0;

impl CostModel {
    /// No modeled cost — unit tests and pure-correctness runs.
    pub fn free() -> Self {
        Self {
            ser_bandwidth: f64::INFINITY,
            deser_bandwidth: f64::INFINITY,
            per_object_overhead: Duration::ZERO,
        }
    }

    /// JVM-class serializer model used by the paper-shaped benchmarks.
    pub fn jvm_class() -> Self {
        Self {
            ser_bandwidth: 700.0 * MB,
            deser_bandwidth: 900.0 * MB,
            per_object_overhead: Duration::from_micros(20),
        }
    }

    /// Returns a copy with all charges multiplied by `factor` (matching
    /// [`sparker_net::profile::NetProfile::scaled`]).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        Self {
            ser_bandwidth: self.ser_bandwidth / factor,
            deser_bandwidth: self.deser_bandwidth / factor,
            per_object_overhead: self.per_object_overhead.mul_f64(factor),
        }
    }

    /// Time to serialize `bytes`.
    pub fn ser_time(&self, bytes: usize) -> Duration {
        self.charge_time(bytes, self.ser_bandwidth)
    }

    /// Time to deserialize `bytes`.
    pub fn deser_time(&self, bytes: usize) -> Duration {
        self.charge_time(bytes, self.deser_bandwidth)
    }

    fn charge_time(&self, bytes: usize, bw: f64) -> Duration {
        if bw.is_infinite() {
            // per_object_overhead is only meaningful for a modeled serializer.
            return Duration::ZERO;
        }
        self.per_object_overhead + Duration::from_secs_f64(bytes as f64 / bw)
    }

    /// Occupies the calling thread for the serialization of `bytes`.
    pub fn charge_ser(&self, bytes: usize) {
        wait_for(self.ser_time(bytes));
    }

    /// Occupies the calling thread for the deserialization of `bytes`.
    pub fn charge_deser(&self, bytes: usize) {
        wait_for(self.deser_time(bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        let c = CostModel::free();
        assert_eq!(c.ser_time(1 << 30), Duration::ZERO);
        assert_eq!(c.deser_time(1 << 30), Duration::ZERO);
    }

    #[test]
    fn ser_time_is_linear_in_bytes() {
        let c = CostModel {
            ser_bandwidth: 1e6,
            deser_bandwidth: 2e6,
            per_object_overhead: Duration::ZERO,
        };
        assert_eq!(c.ser_time(1_000_000), Duration::from_secs(1));
        assert_eq!(c.deser_time(1_000_000), Duration::from_millis(500));
    }

    #[test]
    fn per_object_overhead_applies_once() {
        let c = CostModel {
            ser_bandwidth: 1e9,
            deser_bandwidth: 1e9,
            per_object_overhead: Duration::from_micros(100),
        };
        assert!(c.ser_time(0) >= Duration::from_micros(100));
    }

    #[test]
    fn scaled_slows_charges() {
        let c = CostModel::jvm_class().scaled(2.0);
        let base = CostModel::jvm_class();
        assert!(c.ser_time(1_000_000) > base.ser_time(1_000_000));
        let ratio = c.ser_time(10_000_000).as_secs_f64() / base.ser_time(10_000_000).as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn charge_occupies_the_thread() {
        let c = CostModel {
            ser_bandwidth: 1e6,
            deser_bandwidth: 1e6,
            per_object_overhead: Duration::ZERO,
        };
        let start = std::time::Instant::now();
        c.charge_ser(2_000); // 2 ms
        assert!(start.elapsed() >= Duration::from_millis(2));
    }
}
