//! Tasks, stages, failures and fault injection.
//!
//! The engine schedules work as *stages* of *tasks*, like Spark. A task is a
//! closure pinned to an executor; it runs on one of that executor's core
//! slots and reports success or failure to the driver. Two failure-recovery
//! policies exist, matching the paper's §3.2 discussion:
//!
//! * **Per-task retry** — ordinary stages have independent, idempotent
//!   tasks; the driver re-runs just the failed task.
//! * **Stage resubmission** — reduced-result (IMM) stages share a mutable
//!   per-executor value, so tasks are *not* independent: any failure
//!   invalidates the executor-local merge state and the driver clears it and
//!   resubmits the whole stage.
//!
//! Deterministic fault injection ([`FaultPlan`]) lets tests exercise both
//! paths without randomness.

use std::collections::HashSet;
use std::fmt;

use sparker_net::sync::Mutex;

use sparker_net::error::NetError;
use sparker_net::topology::ExecutorId;

/// Errors surfaced by engine operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A task failed more times than the retry budget allows.
    TaskFailed { stage: String, task: usize, attempts: u32, reason: String },
    /// A transport or codec problem below the engine.
    Net(NetError),
    /// Misuse of an engine API.
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TaskFailed { stage, task, attempts, reason } => write!(
                f,
                "task {task} of stage '{stage}' failed after {attempts} attempts: {reason}"
            ),
            EngineError::Net(e) => write!(f, "network error: {e}"),
            EngineError::Invalid(msg) => write!(f, "invalid engine usage: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<NetError> for EngineError {
    fn from(e: NetError) -> Self {
        EngineError::Net(e)
    }
}

pub type EngineResult<T> = Result<T, EngineError>;

/// A failure a task reports (injected or organic).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFailure {
    pub reason: String,
}

impl From<NetError> for TaskFailure {
    fn from(e: NetError) -> Self {
        TaskFailure { reason: format!("network: {e}") }
    }
}

/// Identifies one task attempt for fault matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskCoord {
    /// Hash of the stage label (stable across resubmission).
    pub stage: u64,
    pub task: usize,
    /// 0-based attempt number (per-task for retries, per-stage for
    /// resubmissions).
    pub attempt: u32,
}

fn stage_hash(label: &str) -> u64 {
    // FNV-1a: stable across runs, unlike the std RandomState hasher.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic fault injection plan.
///
/// A fault registered for `(stage_label, task, attempt)` makes exactly that
/// attempt fail with an injected error; later attempts succeed unless also
/// registered.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Mutex<HashSet<TaskCoord>>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fault for a specific attempt of a task.
    pub fn fail_attempt(&self, stage_label: &str, task: usize, attempt: u32) {
        self.faults.lock().insert(TaskCoord {
            stage: stage_hash(stage_label),
            task,
            attempt,
        });
    }

    /// Registers a fault for the first attempt of a task.
    pub fn fail_once(&self, stage_label: &str, task: usize) {
        self.fail_attempt(stage_label, task, 0);
    }

    /// Checks (without consuming) whether this attempt should fail.
    pub fn should_fail(&self, stage_label: &str, task: usize, attempt: u32) -> bool {
        self.faults.lock().contains(&TaskCoord {
            stage: stage_hash(stage_label),
            task,
            attempt,
        })
    }

    /// True if any faults are registered (used to skip lookups on hot paths).
    pub fn is_armed(&self) -> bool {
        !self.faults.lock().is_empty()
    }
}

/// Where each partition of an RDD runs.
///
/// Spark prefers data locality: once a partition is cached on an executor,
/// tasks over it are scheduled there. This engine uses a deterministic
/// round-robin owner so caching and scheduling always agree.
pub fn partition_owner(partition: usize, num_executors: usize) -> ExecutorId {
    ExecutorId((partition % num_executors) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_matches_registered_attempt_only() {
        let plan = FaultPlan::new();
        plan.fail_once("stage-a", 2);
        assert!(plan.should_fail("stage-a", 2, 0));
        assert!(!plan.should_fail("stage-a", 2, 1));
        assert!(!plan.should_fail("stage-a", 1, 0));
        assert!(!plan.should_fail("stage-b", 2, 0));
        assert!(plan.is_armed());
    }

    #[test]
    fn empty_plan_is_unarmed() {
        let plan = FaultPlan::new();
        assert!(!plan.is_armed());
        assert!(!plan.should_fail("x", 0, 0));
    }

    #[test]
    fn partition_owner_round_robins() {
        assert_eq!(partition_owner(0, 4), ExecutorId(0));
        assert_eq!(partition_owner(5, 4), ExecutorId(1));
        assert_eq!(partition_owner(7, 4), ExecutorId(3));
        assert_eq!(partition_owner(3, 1), ExecutorId(0));
    }

    #[test]
    fn errors_display() {
        let e = EngineError::TaskFailed {
            stage: "s".into(),
            task: 1,
            attempts: 4,
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("after 4 attempts"));
        let e: EngineError = NetError::Timeout.into();
        assert!(e.to_string().contains("network error"));
    }

    #[test]
    fn stage_hash_is_stable_and_distinct() {
        assert_eq!(stage_hash("abc"), stage_hash("abc"));
        assert_ne!(stage_hash("abc"), stage_hash("abd"));
    }
}
