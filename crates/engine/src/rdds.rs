//! Concrete RDD implementations.
//!
//! The set mirrors what the paper's workloads touch: a driver-provided
//! collection, an executor-side generator (our stand-in for reading HDFS
//! splits — data materializes on the executor that owns the partition, not
//! on the driver), the narrow transformations (`map`, `filter`, `flat_map`,
//! `map_partitions`), `union`, and a caching wrapper implementing
//! `MEMORY_ONLY` storage through the executor block store.

use std::sync::Arc;

use crate::blockstore::BlockKey;
use crate::rdd::{next_rdd_id, Data, Rdd, RddId, RddRef, TaskContext};

/// Iterator that yields clones of the elements of an `Arc<Vec<T>>`.
///
/// Cached partitions are shared (`Arc`) between the block store and any
/// number of concurrently running tasks, so consuming them means cloning
/// items out — the same copy Spark pays when iterating a cached block.
pub struct ArcVecIter<T> {
    data: Arc<Vec<T>>,
    idx: usize,
}

impl<T> ArcVecIter<T> {
    pub fn new(data: Arc<Vec<T>>) -> Self {
        Self { data, idx: 0 }
    }
}

impl<T: Clone> Iterator for ArcVecIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let item = self.data.get(self.idx).cloned();
        self.idx += 1;
        item
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.data.len().saturating_sub(self.idx);
        (rem, Some(rem))
    }
}

/// A dataset parallelized from a driver-side collection.
pub struct ParallelCollection<T> {
    id: RddId,
    parts: Vec<Arc<Vec<T>>>,
}

impl<T: Data> ParallelCollection<T> {
    /// Splits `data` into `partitions` near-equal chunks.
    pub fn new(data: Vec<T>, partitions: usize) -> Self {
        assert!(partitions > 0, "need at least one partition");
        let len = data.len();
        let mut parts = Vec::with_capacity(partitions);
        let mut iter = data.into_iter();
        for i in 0..partitions {
            let (start, end) = sparker_collectives::segment::slice_bounds(len, i, partitions);
            parts.push(Arc::new(iter.by_ref().take(end - start).collect::<Vec<_>>()));
        }
        Self { id: next_rdd_id(), parts }
    }
}

impl<T: Data> Rdd for ParallelCollection<T> {
    type Item = T;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.parts.len()
    }
    fn compute(&self, split: usize, _ctx: &TaskContext) -> Box<dyn Iterator<Item = T> + Send> {
        Box::new(ArcVecIter::new(self.parts[split].clone()))
    }
}

/// A dataset generated on the executors, partition by partition.
///
/// This is how benchmark inputs and synthetic datasets enter the engine:
/// the generator runs inside the task that computes the partition, so no
/// bytes travel from the driver (mirroring reading a co-located HDFS split).
pub struct GeneratedRdd<T> {
    id: RddId,
    partitions: usize,
    gen: Arc<dyn Fn(usize) -> Vec<T> + Send + Sync>,
}

impl<T: Data> GeneratedRdd<T> {
    pub fn new(partitions: usize, gen: impl Fn(usize) -> Vec<T> + Send + Sync + 'static) -> Self {
        assert!(partitions > 0);
        Self { id: next_rdd_id(), partitions, gen: Arc::new(gen) }
    }
}

impl<T: Data> Rdd for GeneratedRdd<T> {
    type Item = T;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn compute(&self, split: usize, _ctx: &TaskContext) -> Box<dyn Iterator<Item = T> + Send> {
        Box::new((self.gen)(split).into_iter())
    }
}

/// Element-wise transformation.
pub struct MapRdd<T, U> {
    id: RddId,
    prev: RddRef<T>,
    f: Arc<dyn Fn(T) -> U + Send + Sync>,
}

impl<T: Data, U: Data> MapRdd<T, U> {
    pub fn new(prev: RddRef<T>, f: impl Fn(T) -> U + Send + Sync + 'static) -> Self {
        Self { id: next_rdd_id(), prev, f: Arc::new(f) }
    }
}

impl<T: Data, U: Data> Rdd for MapRdd<T, U> {
    type Item = U;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = U> + Send> {
        let f = self.f.clone();
        Box::new(self.prev.compute(split, ctx).map(move |x| f(x)))
    }
}

/// Predicate filter.
pub struct FilterRdd<T> {
    id: RddId,
    prev: RddRef<T>,
    pred: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Data> FilterRdd<T> {
    pub fn new(prev: RddRef<T>, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Self {
        Self { id: next_rdd_id(), prev, pred: Arc::new(pred) }
    }
}

impl<T: Data> Rdd for FilterRdd<T> {
    type Item = T;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = T> + Send> {
        let pred = self.pred.clone();
        Box::new(self.prev.compute(split, ctx).filter(move |x| pred(x)))
    }
}

/// One-to-many transformation.
pub struct FlatMapRdd<T, U> {
    id: RddId,
    prev: RddRef<T>,
    f: Arc<dyn Fn(T) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> FlatMapRdd<T, U> {
    pub fn new(prev: RddRef<T>, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Self {
        Self { id: next_rdd_id(), prev, f: Arc::new(f) }
    }
}

impl<T: Data, U: Data> Rdd for FlatMapRdd<T, U> {
    type Item = U;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = U> + Send> {
        let f = self.f.clone();
        Box::new(self.prev.compute(split, ctx).flat_map(move |x| f(x)))
    }
}

/// Whole-partition transformation.
pub struct MapPartitionsRdd<T, U> {
    id: RddId,
    prev: RddRef<T>,
    f: Arc<dyn Fn(usize, Vec<T>) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> MapPartitionsRdd<T, U> {
    pub fn new(
        prev: RddRef<T>,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Self {
        Self { id: next_rdd_id(), prev, f: Arc::new(f) }
    }
}

impl<T: Data, U: Data> Rdd for MapPartitionsRdd<T, U> {
    type Item = U;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = U> + Send> {
        let items: Vec<T> = self.prev.compute(split, ctx).collect();
        Box::new((self.f)(split, items).into_iter())
    }
}

/// Concatenation of two datasets (partitions of `a` first).
pub struct UnionRdd<T> {
    id: RddId,
    a: RddRef<T>,
    b: RddRef<T>,
}

impl<T: Data> UnionRdd<T> {
    pub fn new(a: RddRef<T>, b: RddRef<T>) -> Self {
        Self { id: next_rdd_id(), a, b }
    }
}

impl<T: Data> Rdd for UnionRdd<T> {
    type Item = T;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.a.num_partitions() + self.b.num_partitions()
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = T> + Send> {
        let na = self.a.num_partitions();
        if split < na {
            self.a.compute(split, ctx)
        } else {
            self.b.compute(split - na, ctx)
        }
    }
}

/// `MEMORY_ONLY` caching wrapper: first computation of each partition
/// materializes it in the executor's block store; later computations read
/// the cached block.
pub struct CachedRdd<T> {
    id: RddId,
    prev: RddRef<T>,
}

impl<T: Data> CachedRdd<T> {
    pub fn new(prev: RddRef<T>) -> Self {
        Self { id: next_rdd_id(), prev }
    }
}

impl<T: Data> Rdd for CachedRdd<T> {
    type Item = T;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = T> + Send> {
        let key = BlockKey { rdd: self.id, partition: split };
        let block = ctx
            .blocks
            .get_or_compute(key, || self.prev.compute(split, ctx).collect());
        Box::new(ArcVecIter::new(block))
    }
}

/// The paper's `SpawnRDD` (§4.3): one partition per entry of a static
/// executor list, each computed by a closure that sees the executor-local
/// [`TaskContext`] — the building block of split aggregation's
/// statically-scheduled ring stage.
/// Closure type of a [`SpawnRdd`] partition generator.
type SpawnFn<T> = Arc<dyn Fn(usize, &TaskContext) -> Vec<T> + Send + Sync>;

pub struct SpawnRdd<T> {
    id: RddId,
    placements: Vec<sparker_net::topology::ExecutorId>,
    gen: SpawnFn<T>,
}

impl<T: Data> SpawnRdd<T> {
    pub fn new(
        placements: Vec<sparker_net::topology::ExecutorId>,
        gen: impl Fn(usize, &TaskContext) -> Vec<T> + Send + Sync + 'static,
    ) -> Self {
        assert!(!placements.is_empty(), "SpawnRdd needs at least one placement");
        Self { id: next_rdd_id(), placements, gen: Arc::new(gen) }
    }

    /// One partition pinned to every executor of the cluster, in id order.
    pub fn one_per_executor(
        num_executors: usize,
        gen: impl Fn(usize, &TaskContext) -> Vec<T> + Send + Sync + 'static,
    ) -> Self {
        let placements = (0..num_executors)
            .map(|e| sparker_net::topology::ExecutorId(e as u32))
            .collect();
        Self::new(placements, gen)
    }
}

impl<T: Data> Rdd for SpawnRdd<T> {
    type Item = T;
    fn id(&self) -> RddId {
        self.id
    }
    fn num_partitions(&self) -> usize {
        self.placements.len()
    }
    fn compute(&self, split: usize, ctx: &TaskContext) -> Box<dyn Iterator<Item = T> + Send> {
        Box::new((self.gen)(split, ctx).into_iter())
    }
    fn preferred_executor(&self, split: usize) -> Option<sparker_net::topology::ExecutorId> {
        Some(self.placements[split])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_all<T: Data>(rdd: &dyn Rdd<Item = T>, ctx: &TaskContext) -> Vec<T> {
        (0..rdd.num_partitions())
            .flat_map(|p| rdd.compute(p, ctx).collect::<Vec<_>>())
            .collect()
    }

    #[test]
    fn parallel_collection_partitions_evenly() {
        let ctx = TaskContext::standalone();
        let rdd = ParallelCollection::new((0..10u32).collect(), 3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(collect_all(&rdd, &ctx), (0..10).collect::<Vec<_>>());
        // Balanced: 4/3/3.
        let sizes: Vec<usize> = (0..3).map(|p| rdd.compute(p, &ctx).count()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn parallel_collection_more_partitions_than_items() {
        let ctx = TaskContext::standalone();
        let rdd = ParallelCollection::new(vec![1u8, 2], 5);
        assert_eq!(rdd.num_partitions(), 5);
        assert_eq!(collect_all(&rdd, &ctx), vec![1, 2]);
    }

    #[test]
    fn generated_rdd_computes_per_partition() {
        let ctx = TaskContext::standalone();
        let rdd = GeneratedRdd::new(4, |p| vec![p as u64 * 10, p as u64 * 10 + 1]);
        assert_eq!(collect_all(&rdd, &ctx), vec![0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn map_filter_flatmap_chain() {
        let ctx = TaskContext::standalone();
        let base: RddRef<u32> = Arc::new(ParallelCollection::new((0..6u32).collect(), 2));
        let mapped: RddRef<u32> = Arc::new(MapRdd::new(base, |x| x * 2));
        let filtered: RddRef<u32> = Arc::new(FilterRdd::new(mapped, |x| *x % 4 == 0));
        let flat: RddRef<u32> = Arc::new(FlatMapRdd::new(filtered, |x| vec![x, x + 1]));
        assert_eq!(collect_all(flat.as_ref(), &ctx), vec![0, 1, 4, 5, 8, 9]);
    }

    #[test]
    fn map_partitions_sees_whole_partition() {
        let ctx = TaskContext::standalone();
        let base: RddRef<u32> = Arc::new(ParallelCollection::new((1..=6u32).collect(), 2));
        let sums: RddRef<u32> =
            Arc::new(MapPartitionsRdd::new(base, |_p, items| vec![items.iter().sum()]));
        assert_eq!(collect_all(sums.as_ref(), &ctx), vec![6, 15]);
    }

    #[test]
    fn union_concatenates_partitions() {
        let ctx = TaskContext::standalone();
        let a: RddRef<u8> = Arc::new(ParallelCollection::new(vec![1, 2], 1));
        let b: RddRef<u8> = Arc::new(ParallelCollection::new(vec![3, 4], 2));
        let u = UnionRdd::new(a, b);
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(collect_all(&u, &ctx), vec![1, 2, 3, 4]);
    }

    #[test]
    fn cached_rdd_computes_once_per_partition() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ctx = TaskContext::standalone();
        let computes = Arc::new(AtomicUsize::new(0));
        let counter = computes.clone();
        let base: RddRef<u64> = Arc::new(GeneratedRdd::new(2, move |p| {
            counter.fetch_add(1, Ordering::SeqCst);
            vec![p as u64]
        }));
        let cached = CachedRdd::new(base);
        assert_eq!(collect_all(&cached, &ctx), vec![0, 1]);
        assert_eq!(collect_all(&cached, &ctx), vec![0, 1]);
        assert_eq!(computes.load(Ordering::SeqCst), 2, "one compute per partition");
        assert_eq!(ctx.blocks.len(), 2);
    }

    #[test]
    fn spawn_rdd_reports_static_placement() {
        use sparker_net::topology::ExecutorId;
        let placements = vec![ExecutorId(2), ExecutorId(0), ExecutorId(1)];
        let rdd = SpawnRdd::new(placements.clone(), |split, _ctx| vec![split as u64]);
        assert_eq!(rdd.num_partitions(), 3);
        for (split, want) in placements.iter().enumerate() {
            assert_eq!(rdd.preferred_executor(split), Some(*want));
        }
        let ctx = TaskContext::standalone();
        assert_eq!(collect_all(&rdd, &ctx), vec![0, 1, 2]);
    }

    #[test]
    fn spawn_rdd_one_per_executor() {
        let rdd = SpawnRdd::one_per_executor(4, |split, ctx| {
            vec![(split as u32, ctx.executor.0)]
        });
        assert_eq!(rdd.num_partitions(), 4);
        for e in 0..4u32 {
            assert_eq!(
                rdd.preferred_executor(e as usize),
                Some(sparker_net::topology::ExecutorId(e))
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one placement")]
    fn spawn_rdd_rejects_empty_placements() {
        SpawnRdd::<u8>::new(vec![], |_, _| vec![]);
    }

    #[test]
    fn arc_vec_iter_size_hint() {
        let it = ArcVecIter::new(Arc::new(vec![1, 2, 3]));
        assert_eq!(it.size_hint(), (3, Some(3)));
        let collected: Vec<i32> = it.collect();
        assert_eq!(collected, vec![1, 2, 3]);
    }
}
