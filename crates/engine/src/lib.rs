//! # sparker-engine
//!
//! A mini Spark-like distributed dataflow engine — the substrate the Sparker
//! paper modifies. Executors are OS-thread pools inside one process,
//! inter-executor and executor↔driver traffic flows through the shaped
//! transports of `sparker-net`, and every value crossing an executor
//! boundary passes the explicit serialization codec. The engine reproduces
//! the Spark execution structure the paper's costs hang off:
//!
//! * **RDDs with lineage** ([`rdd`], [`rdds`]) — lazy transformations over
//!   partitioned datasets, plus `MEMORY_ONLY` caching in per-executor block
//!   stores.
//! * **Stages and tasks** ([`cluster`], [`task`]) — the driver turns actions
//!   into stages of tasks, schedules them on executor core slots, retries
//!   failed tasks, and fetches serialized task results over the
//!   BlockManager-class transport (exactly Spark's result path).
//! * **Tree aggregation** ([`ops::tree_aggregate`]) — Spark's
//!   `treeAggregate`: per-partition aggregators, log-depth shuffle rounds
//!   that serialize whole aggregators between executors, and a final
//!   sequential merge at the driver. This is the paper's baseline.
//! * **In-Memory Merge** ([`objects`], `ImmMode` in
//!   [`ops::split_aggregate`]) — the paper's §3.2:
//!   tasks on the same executor merge their results into a shared in-memory
//!   value *before* serialization (a "reduced-result stage"); task failure
//!   invalidates the shared value and the whole stage resubmits.
//! * **Split aggregation** ([`ops::split_aggregate`]) — the paper's §3.1/§4:
//!   an IMM stage materializes one aggregator per executor, a statically
//!   scheduled stage (the paper's `SpawnRDD`) runs ring reduce-scatter over
//!   the parallel directed ring via the scalable communicator, and the
//!   driver concatenates the gathered segments with the user's `concatOp`.
//!
//! The user-facing API mirrors the paper's Figure 6 and lives in the
//! `sparker` facade crate; this crate is the machinery.

pub mod blockstore;
pub mod broadcast;
pub mod cluster;
pub mod config;
pub mod cost;
pub mod dataset;
pub mod history;
pub mod metrics;
pub mod multiproc;
pub mod objects;
pub mod ops;
pub mod rdd;
pub mod rdds;
pub mod task;

pub use broadcast::Broadcast;
pub use cluster::LocalCluster;
pub use config::ClusterSpec;
pub use cost::CostModel;
pub use dataset::Dataset;
pub use metrics::AggMetrics;
pub use ops::split_aggregate::{SelectorOpts, SplitAggOpts};
pub use ops::tree_aggregate::TreeAggOpts;
pub use rdd::{Data, Rdd, RddId};
pub use task::EngineError;
