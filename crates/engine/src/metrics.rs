//! Aggregation run metrics.
//!
//! The paper's analysis decomposes tree aggregation into *computation* (the
//! first stage, where partition aggregators are built) and *reduction*
//! (everything after, until the driver holds one aggregator) — Figures 3, 4
//! and 18 are built on that decomposition. Every aggregation op in this
//! engine reports an [`AggMetrics`] with the same split plus byte-level
//! accounting, so benchmarks and tests can assert not just totals but *why*
//! a strategy wins (e.g. IMM's benefit shows up in `ser_bytes_to_driver`).

use std::time::Duration;

/// Which aggregation strategy produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggStrategy {
    /// Spark's `treeAggregate`: per-partition results, shuffle tree, driver merge.
    Tree,
    /// Tree aggregation with In-Memory Merge in the compute stage.
    TreeImm,
    /// Sparker's split aggregation: IMM + ring reduce-scatter + gather.
    Split,
    /// Split aggregation with recursive halving instead of the ring.
    SplitHalving,
    /// Split aggregation with the two-level (intra-node fold + inter-node
    /// ring) hierarchical reduce-scatter.
    SplitHier,
}

impl AggStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            AggStrategy::Tree => "tree",
            AggStrategy::TreeImm => "tree+imm",
            AggStrategy::Split => "split",
            AggStrategy::SplitHalving => "split-halving",
            AggStrategy::SplitHier => "split-hier",
        }
    }
}

/// Timing and traffic decomposition of one aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct AggMetrics {
    pub strategy: AggStrategy,
    /// Wall time of the compute stage (paper: "Agg-compute").
    pub compute: Duration,
    /// Wall time from compute-stage completion to the driver holding the
    /// final value (paper: "Agg-reduce").
    pub reduce: Duration,
    /// Portion of `reduce` the driver spent deserializing + merging.
    pub driver_merge: Duration,
    /// Aggregator bytes serialized anywhere (shuffle + results + ring).
    pub ser_bytes: u64,
    /// Aggregator bytes that crossed into the driver.
    pub bytes_to_driver: u64,
    /// Aggregator-carrying messages sent.
    pub messages: u64,
    /// Stages executed (including resubmissions).
    pub stages: u32,
    /// Task attempts executed (retries included).
    pub task_attempts: u32,
    /// True when the collective path exhausted its gang attempts and the
    /// result was produced by the degraded (tree-style) fallback instead.
    pub downgraded: bool,
    /// Scheduler job this aggregation ran under, making rows from concurrent
    /// jobs attributable in merged CSVs. Single-job runs emit 0.
    pub job_id: u64,
}

impl AggMetrics {
    pub fn new(strategy: AggStrategy) -> Self {
        Self {
            strategy,
            compute: Duration::ZERO,
            reduce: Duration::ZERO,
            driver_merge: Duration::ZERO,
            ser_bytes: 0,
            bytes_to_driver: 0,
            messages: 0,
            stages: 0,
            task_attempts: 0,
            downgraded: false,
            job_id: 0,
        }
    }

    /// Total aggregation wall time.
    pub fn total(&self) -> Duration {
        self.compute + self.reduce
    }

    /// The single wire-bytes number benches compare across strategies and
    /// representations: every aggregator byte serialized anywhere (shuffle,
    /// results, ring/halving exchanges, fallback frames). Since
    /// `Segment::payload_bytes` defaults to the exact `Payload::size_hint`,
    /// this is the same accounting the `sparse.wire_bytes` metric uses.
    pub fn wire_bytes(&self) -> u64 {
        self.ser_bytes
    }

    /// Column names matching [`AggMetrics::csv_row`]. Bench bins prepend
    /// their own key columns (dimension, executors, …) to both.
    pub fn csv_header() -> &'static str {
        "strategy,compute_s,reduce_s,driver_merge_s,total_s,ser_bytes,wire_bytes,bytes_to_driver,messages,stages,task_attempts,downgraded,job_id"
    }

    /// One CSV row of every field, in [`AggMetrics::csv_header`] order.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.9},{:.9},{:.9},{:.9},{},{},{},{},{},{},{},{}",
            self.strategy.name(),
            self.compute.as_secs_f64(),
            self.reduce.as_secs_f64(),
            self.driver_merge.as_secs_f64(),
            self.total().as_secs_f64(),
            self.ser_bytes,
            self.wire_bytes(),
            self.bytes_to_driver,
            self.messages,
            self.stages,
            self.task_attempts,
            self.downgraded as u8,
            self.job_id,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(AggStrategy::Tree.name(), "tree");
        assert_eq!(AggStrategy::TreeImm.name(), "tree+imm");
        assert_eq!(AggStrategy::Split.name(), "split");
        assert_eq!(AggStrategy::SplitHalving.name(), "split-halving");
        assert_eq!(AggStrategy::SplitHier.name(), "split-hier");
    }

    #[test]
    fn total_is_compute_plus_reduce() {
        let mut m = AggMetrics::new(AggStrategy::Tree);
        m.compute = Duration::from_millis(10);
        m.reduce = Duration::from_millis(5);
        assert_eq!(m.total(), Duration::from_millis(15));
    }

    #[test]
    fn csv_row_matches_header_arity_and_values() {
        let mut m = AggMetrics::new(AggStrategy::Split);
        m.compute = Duration::from_millis(250);
        m.reduce = Duration::from_millis(750);
        m.ser_bytes = 1024;
        m.bytes_to_driver = 128;
        m.messages = 7;
        m.stages = 2;
        m.task_attempts = 9;
        m.downgraded = true;
        m.job_id = 42;
        let header: Vec<&str> = AggMetrics::csv_header().split(',').collect();
        let row = m.csv_row();
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(header.len(), cells.len(), "row arity matches header");
        assert_eq!(cells[0], "split");
        assert_eq!(cells[4], "1.000000000"); // total_s
        assert_eq!(cells[5], "1024"); // ser_bytes
        assert_eq!(cells[6], "1024"); // wire_bytes mirrors the unified accounting
        assert_eq!(cells[11], "1"); // downgraded
        assert_eq!(cells[12], "42"); // job_id, last column so older indices hold
    }

    #[test]
    fn single_job_rows_emit_job_id_zero() {
        let m = AggMetrics::new(AggStrategy::Tree);
        let row = m.csv_row();
        assert_eq!(row.split(',').last(), Some("0"));
    }
}
