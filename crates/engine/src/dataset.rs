//! `Dataset<T>`: the user-facing handle pairing an RDD with its cluster.
//!
//! Mirrors how Spark users hold an `RDD[T]` created from a `SparkContext`:
//! transformations are lazy and return new handles; actions execute. The
//! aggregation actions expose the paper's two interfaces side by side —
//! `tree_aggregate` (Figure 6 top) and `split_aggregate` (Figure 6 bottom) —
//! plus the IMM and algorithm toggles the evaluation sweeps over.

use std::sync::Arc;

use sparker_net::codec::Payload;

use crate::cluster::LocalCluster;
use crate::config::ClusterSpec;
use crate::metrics::AggMetrics;
use crate::ops;
use crate::ops::split_aggregate::SplitAggOpts;
use crate::ops::tree_aggregate::TreeAggOpts;
use crate::rdd::{Data, RddRef};
use crate::rdds::{
    CachedRdd, FilterRdd, FlatMapRdd, GeneratedRdd, MapPartitionsRdd, MapRdd, ParallelCollection,
    UnionRdd,
};
use crate::task::EngineResult;

/// A distributed dataset bound to a cluster.
#[derive(Clone)]
pub struct Dataset<T: Data> {
    cluster: LocalCluster,
    rdd: RddRef<T>,
}

impl LocalCluster {
    /// Distributes a driver-side collection over `partitions`.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> Dataset<T> {
        Dataset { cluster: self.clone(), rdd: Arc::new(ParallelCollection::new(data, partitions)) }
    }

    /// Creates a dataset generated partition-by-partition on the executors.
    pub fn generate<T: Data>(
        &self,
        partitions: usize,
        gen: impl Fn(usize) -> Vec<T> + Send + Sync + 'static,
    ) -> Dataset<T> {
        Dataset { cluster: self.clone(), rdd: Arc::new(GeneratedRdd::new(partitions, gen)) }
    }

    /// Boots an unshaped local cluster (tests, examples).
    pub fn local(executors: usize, cores_per_executor: usize) -> Self {
        LocalCluster::new(ClusterSpec::local(executors, cores_per_executor))
    }

    /// Creates a statically-scheduled dataset (the paper's `SpawnRDD`):
    /// one partition pinned to every executor, computed by `gen` with
    /// access to the executor-local context.
    pub fn spawn<T: Data>(
        &self,
        gen: impl Fn(usize, &crate::rdd::TaskContext) -> Vec<T> + Send + Sync + 'static,
    ) -> Dataset<T> {
        Dataset {
            cluster: self.clone(),
            rdd: Arc::new(crate::rdds::SpawnRdd::one_per_executor(self.num_executors(), gen)),
        }
    }
}

impl<T: Data> Dataset<T> {
    /// Wraps an existing RDD (for custom sources).
    pub fn from_rdd(cluster: LocalCluster, rdd: RddRef<T>) -> Self {
        Self { cluster, rdd }
    }

    /// The underlying RDD handle.
    pub fn rdd(&self) -> &RddRef<T> {
        &self.rdd
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &LocalCluster {
        &self.cluster
    }

    pub fn num_partitions(&self) -> usize {
        self.rdd.num_partitions()
    }

    // ----- transformations (lazy) -----------------------------------------

    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Dataset<U> {
        Dataset {
            cluster: self.cluster.clone(),
            rdd: Arc::new(MapRdd::new(self.rdd.clone(), f)),
        }
    }

    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Dataset<T> {
        Dataset {
            cluster: self.cluster.clone(),
            rdd: Arc::new(FilterRdd::new(self.rdd.clone(), pred)),
        }
    }

    pub fn flat_map<U: Data>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Dataset<U> {
        Dataset {
            cluster: self.cluster.clone(),
            rdd: Arc::new(FlatMapRdd::new(self.rdd.clone(), f)),
        }
    }

    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        Dataset {
            cluster: self.cluster.clone(),
            rdd: Arc::new(MapPartitionsRdd::new(self.rdd.clone(), f)),
        }
    }

    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        Dataset {
            cluster: self.cluster.clone(),
            rdd: Arc::new(UnionRdd::new(self.rdd.clone(), other.rdd.clone())),
        }
    }

    /// Marks the dataset `MEMORY_ONLY`-cached. Materialize with
    /// [`Dataset::count`] like the paper's micro-benchmark pre-load.
    pub fn cache(&self) -> Dataset<T> {
        Dataset {
            cluster: self.cluster.clone(),
            rdd: Arc::new(CachedRdd::new(self.rdd.clone())),
        }
    }

    /// Evicts this dataset's cached partitions from every executor
    /// (Spark's `unpersist`). No-op for uncached datasets; the lineage
    /// stays valid, so later actions simply recompute.
    pub fn unpersist(&self) {
        let inner = self.cluster.inner();
        for e in 0..inner.num_executors() {
            inner
                .executor_ctx(sparker_net::topology::ExecutorId(e as u32))
                .blocks
                .evict_rdd(self.rdd.id());
        }
    }

    // ----- actions ---------------------------------------------------------

    pub fn count(&self) -> EngineResult<u64> {
        ops::basic::count(&self.cluster, self.rdd.clone())
    }

    pub fn collect(&self) -> EngineResult<Vec<T>>
    where
        T: Payload,
    {
        ops::basic::collect(&self.cluster, self.rdd.clone())
    }

    /// Plain aggregation: all partition aggregators go straight to the driver.
    pub fn aggregate<U>(
        &self,
        zero: U,
        seq: impl Fn(U, &T) -> U + Send + Sync + 'static,
        comb: impl Fn(U, U) -> U,
    ) -> EngineResult<U>
    where
        U: Payload + Clone + Send + Sync,
    {
        ops::basic::aggregate(&self.cluster, self.rdd.clone(), zero, seq, comb)
    }

    /// Spark's `treeAggregate` (paper Figure 6, top).
    pub fn tree_aggregate<U>(
        &self,
        zero: U,
        seq: impl Fn(U, &T) -> U + Send + Sync + 'static,
        comb: impl Fn(U, U) -> U + Send + Sync + 'static,
        opts: TreeAggOpts,
    ) -> EngineResult<(U, AggMetrics)>
    where
        U: Payload + Clone + Send + Sync,
    {
        ops::tree_aggregate::tree_aggregate(&self.cluster, self.rdd.clone(), zero, seq, comb, opts)
    }

    /// Allreduce aggregation (extension past the paper): reduce-scatter +
    /// allgather leave the reduced value resident on every executor, and
    /// the driver receives a single copy. See
    /// [`crate::ops::allreduce_aggregate`].
    #[allow(clippy::too_many_arguments)]
    pub fn allreduce_aggregate<U, V>(
        &self,
        zero: U,
        seq: impl Fn(U, &T) -> U + Send + Sync + 'static,
        merge: impl Fn(&mut U, U) + Send + Sync + 'static,
        split: impl Fn(&U, usize, usize) -> V + Send + Sync + 'static,
        reduce: impl Fn(&mut V, V) + Send + Sync + 'static,
        concat: impl Fn(Vec<V>) -> V + Send + Sync + 'static,
        parallelism: Option<usize>,
    ) -> EngineResult<crate::ops::allreduce_aggregate::AllReduceOutput<V>>
    where
        U: Clone + Send + Sync + 'static,
        V: Payload + Clone + Send + Sync + 'static,
    {
        crate::ops::allreduce_aggregate::allreduce_aggregate(
            &self.cluster,
            self.rdd.clone(),
            zero,
            seq,
            merge,
            split,
            reduce,
            concat,
            parallelism,
        )
    }

    /// Sparker's `splitAggregate` (paper Figure 6, bottom).
    #[allow(clippy::too_many_arguments)]
    pub fn split_aggregate<U, V>(
        &self,
        zero: U,
        seq: impl Fn(U, &T) -> U + Send + Sync + 'static,
        merge: impl Fn(&mut U, U) + Send + Sync + 'static,
        split: impl Fn(&U, usize, usize) -> V + Send + Sync + 'static,
        reduce: impl Fn(&mut V, V) + Send + Sync + 'static,
        concat: impl FnOnce(Vec<V>) -> V,
        opts: SplitAggOpts,
    ) -> EngineResult<(V, AggMetrics)>
    where
        U: Clone + Send + Sync + 'static,
        V: Payload + Clone + Send + Sync + 'static,
    {
        ops::split_aggregate::split_aggregate(
            &self.cluster,
            self.rdd.clone(),
            zero,
            seq,
            merge,
            split,
            reduce,
            concat,
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformations_compose_lazily_and_actions_execute() {
        let cluster = LocalCluster::local(3, 2);
        let ds = cluster.parallelize((0..50u64).collect(), 6);
        let result = ds
            .map(|x| x * 2)
            .filter(|x| x % 4 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect()
            .unwrap();
        let expected: Vec<u64> = (0..50u64)
            .map(|x| x * 2)
            .filter(|x| x % 4 == 0)
            .flat_map(|x| vec![x, x + 1])
            .collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn cache_then_count_then_aggregate() {
        let cluster = LocalCluster::local(2, 2);
        let ds = cluster
            .generate(4, |p| vec![p as u64 + 1; 10])
            .cache();
        assert_eq!(ds.count().unwrap(), 40);
        let sum = ds.aggregate(0u64, |a, x| a + *x, |a, b| a + b).unwrap();
        assert_eq!(sum, 10 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn union_combines_datasets() {
        let cluster = LocalCluster::local(2, 1);
        let a = cluster.parallelize(vec![1u32, 2], 1);
        let b = cluster.parallelize(vec![3u32, 4], 1);
        assert_eq!(a.union(&b).collect().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn unpersist_evicts_and_recompute_still_works() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cluster = LocalCluster::local(2, 1);
        let computes = Arc::new(AtomicUsize::new(0));
        let counter = computes.clone();
        let ds = cluster
            .generate(2, move |p| {
                counter.fetch_add(1, Ordering::SeqCst);
                vec![p as u64]
            })
            .cache();
        assert_eq!(ds.count().unwrap(), 2);
        assert_eq!(ds.count().unwrap(), 2);
        assert_eq!(computes.load(Ordering::SeqCst), 2, "cached after first count");
        ds.unpersist();
        assert_eq!(ds.count().unwrap(), 2, "recompute after eviction");
        assert_eq!(computes.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn spawn_runs_each_task_on_its_pinned_executor() {
        let cluster = LocalCluster::local(4, 2);
        let ds = cluster.spawn(|split, ctx| vec![(split as u32, ctx.executor.0)]);
        let got = ds.collect().unwrap();
        assert_eq!(got.len(), 4);
        for (split, exec) in got {
            assert_eq!(split, exec, "task {split} ran on executor {exec}");
        }
    }

    #[test]
    fn tree_and_split_agree_on_dataset_api() {
        let cluster = LocalCluster::local(3, 2);
        let ds = cluster.generate(6, |p| vec![(p + 1) as u64; 5]);
        let (tree, _) = ds
            .tree_aggregate(0u64, |a, x| a + *x, |a, b| a + b, TreeAggOpts::default())
            .unwrap();
        let (split, _) = ds
            .split_aggregate(
                0u64,
                |a, x| a + *x,
                |a, b| *a += b,
                |u, i, _n| if i == 0 { *u } else { 0 },
                |a, b| *a += b,
                |segs| segs.into_iter().sum(),
                SplitAggOpts::default(),
            )
            .unwrap();
        assert_eq!(tree, split);
        assert_eq!(tree, 5 * (1 + 2 + 3 + 4 + 5 + 6));
    }
}
