//! Actions: the operations that trigger execution.
//!
//! * [`basic`] — `collect`, `count`, and plain `aggregate` (every partition
//!   result ships straight to the driver).
//! * [`tree_aggregate`] — Spark's `treeAggregate` baseline, with optional
//!   In-Memory Merge in the compute stage.
//! * [`split_aggregate`] — Sparker's contribution: IMM + ring reduce-scatter
//!   over the PDR + gather/concat at the driver.
//! * [`allreduce_aggregate`] — extension past the paper: finish with a ring
//!   allgather so the reduced value stays resident on every executor and
//!   the driver stops being a fan-in point.

pub mod allreduce_aggregate;
pub mod basic;
pub mod split_aggregate;
pub mod tree_aggregate;
