//! `treeAggregate` — Spark's multi-level aggregation (the paper's baseline).
//!
//! Mirrors `RDD.treeAggregate` in Spark:
//!
//! 1. **Compute stage** — one task per partition folds the partition into an
//!    aggregator with `seqOp`. Stock Spark keeps one aggregator per
//!    partition; with In-Memory Merge (`imm: true`) tasks merge into a
//!    single shared aggregator per executor instead (paper §3.2), shrinking
//!    the number of objects that must ever be serialized.
//! 2. **Shuffle rounds** — while more than `scale + n/scale` aggregators
//!    remain (`scale = ⌈n^(1/depth)⌉`, Spark's formula), aggregators are
//!    hashed down to `n/scale` reducers: each is serialized on its source
//!    executor, shipped over the BlockManager-class transport, deserialized
//!    and merged with `combOp` at its target.
//! 3. **Final reduce** — remaining aggregators ship to the driver, which
//!    merges them **sequentially**. This driver fan-in is the non-scalable
//!    step the paper measures as "Agg-reduce".
//!
//! Every aggregator crossing an executor boundary is whole — no splitting —
//! which is precisely the interface restriction §2.4 identifies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sparker_obs::trace::ScopedSpan;
use sparker_obs::Layer;

use sparker_net::codec::{Decoder, Encoder, Payload};
use sparker_net::topology::ExecutorId;

use crate::cluster::{LocalCluster, RecoveryPolicy};
use crate::metrics::{AggMetrics, AggStrategy};
use crate::objects::ObjectId;
use crate::ops::basic::{fold_partition, partition_assignments};
use crate::rdd::{Data, RddRef};
use crate::task::{EngineError, EngineResult, TaskFailure};

/// Options for [`tree_aggregate`].
#[derive(Debug, Clone, Copy)]
pub struct TreeAggOpts {
    /// Tree depth (Spark default 2).
    pub depth: usize,
    /// Merge task results in-memory per executor before any serialization.
    pub imm: bool,
}

impl Default for TreeAggOpts {
    fn default() -> Self {
        Self { depth: 2, imm: false }
    }
}

/// Spark's scale factor: `max(⌈n^(1/depth)⌉, 2)`.
pub(crate) fn tree_scale(partitions: usize, depth: usize) -> usize {
    ((partitions as f64).powf(1.0 / depth.max(1) as f64).ceil() as usize).max(2)
}

/// Runs tree aggregation and reports the paper's compute/reduce split.
pub fn tree_aggregate<T, U, S, C>(
    cluster: &LocalCluster,
    rdd: RddRef<T>,
    zero: U,
    seq: S,
    comb: C,
    opts: TreeAggOpts,
) -> EngineResult<(U, AggMetrics)>
where
    T: Data,
    U: Payload + Clone + Send + Sync,
    S: Fn(U, &T) -> U + Send + Sync + 'static,
    C: Fn(U, U) -> U + Send + Sync + 'static,
{
    let inner = cluster.inner().clone();
    let _action = inner.lock_action();
    let op = inner.next_op();
    let parts = rdd.num_partitions();
    if parts == 0 {
        return Err(EngineError::Invalid("tree_aggregate over zero partitions".into()));
    }
    let nexec = inner.num_executors();
    let assignments = partition_assignments(&inner, &rdd);
    let seq = Arc::new(seq);
    let comb = Arc::new(comb);
    let zero_shared = zero.clone();

    let mut metrics = AggMetrics::new(if opts.imm { AggStrategy::TreeImm } else { AggStrategy::Tree });
    let ser_bytes = Arc::new(AtomicU64::new(0));
    let messages = Arc::new(AtomicU64::new(0));
    // Op phases are Driver-layer scoped spans; AggMetrics durations are read
    // back from them, so the metrics view and the exported trace agree.
    let scope = inner.history().scope();

    // --- Stage 1: compute partition aggregators -------------------------
    let compute_span = ScopedSpan::begin(
        scope,
        Layer::Driver,
        format!("{}-compute-op{op}", metrics.strategy.name()),
    );
    let stage_label = format!("tree-compute-op{op}");
    let (policy, imm) = if opts.imm {
        (RecoveryPolicy::ResubmitStage { op }, true)
    } else {
        (RecoveryPolicy::RetryTask, false)
    };
    {
        let rdd = rdd.clone();
        let seq = seq.clone();
        let comb = comb.clone();
        let zero = zero_shared.clone();
        let (_, attempts) = inner.run_stage(
            &stage_label,
            &assignments,
            move |idx, _attempt, ctx| {
                let acc = fold_partition(&rdd, idx, ctx, zero.clone(), seq.as_ref())?;
                let slot = if imm { ctx.executor.0 as u64 } else { idx as u64 };
                let comb = comb.clone();
                let zero = zero.clone();
                ctx.objects.merge_in(ObjectId { op, slot }, acc, move |a, b| {
                    let old = std::mem::replace(a, zero.clone());
                    *a = comb(old, b);
                });
                Ok(())
            },
            policy,
        )?;
        metrics.task_attempts += attempts;
        metrics.stages += 1;
    }
    metrics.compute = compute_span.finish();

    // Holders of live aggregators after the compute stage.
    let mut holders: Vec<(ExecutorId, u64)> = if opts.imm {
        let mut execs: Vec<ExecutorId> = assignments.clone();
        execs.sort();
        execs.dedup();
        execs.into_iter().map(|e| (e, e.0 as u64)).collect()
    } else {
        (0..parts).map(|p| (assignments[p], p as u64)).collect()
    };

    // --- Shuffle rounds --------------------------------------------------
    let reduce_span = ScopedSpan::begin(
        scope,
        Layer::Driver,
        format!("{}-reduce-op{op}", metrics.strategy.name()),
    );
    let scale = tree_scale(parts, opts.depth);
    let mut level: u64 = 1;
    while holders.len() > scale + holders.len() / scale {
        let m = (holders.len() / scale).max(1);
        holders = shuffle_round(
            cluster, op, level, &holders, m, nexec, &comb, &zero_shared, &ser_bytes, &messages,
            &mut metrics,
        )?;
        level += 1;
    }

    // --- Final reduce at the driver --------------------------------------
    let final_label = format!("tree-final-op{op}");
    let final_assignments: Vec<ExecutorId> = holders.iter().map(|(e, _)| *e).collect();
    {
        let slots: Vec<u64> = holders.iter().map(|(_, s)| *s).collect();
        let send_inner = inner.clone();
        let ser_bytes = ser_bytes.clone();
        let messages = messages.clone();
        let (_, attempts) = inner.run_stage(
            &final_label,
            &final_assignments,
            move |idx, _attempt, ctx| {
                let u: U = ctx
                    .objects
                    .take(ObjectId { op, slot: slots[idx] })
                    .ok_or_else(|| TaskFailure { reason: format!("missing aggregator slot {}", slots[idx]) })?;
                let frame = u.to_frame();
                ser_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
                messages.fetch_add(1, Ordering::Relaxed);
                send_inner.bm_send_to_driver(ctx.executor, frame)?;
                Ok(())
            },
            RecoveryPolicy::RetryTask,
        )?;
        metrics.task_attempts += attempts;
        metrics.stages += 1;
    }

    let merge_span = ScopedSpan::begin(
        scope,
        Layer::Driver,
        format!("{}-driver-merge-op{op}", metrics.strategy.name()),
    );
    let mut acc = zero;
    for exec in &final_assignments {
        let frame = inner.driver_recv(*exec)?;
        metrics.bytes_to_driver += frame.len() as u64;
        let u = U::from_frame(frame)?;
        acc = comb(acc, u);
    }
    metrics.driver_merge = merge_span.finish();
    metrics.reduce = reduce_span.finish();
    // Final-stage frames were already counted by the task-side atomics.
    metrics.ser_bytes = ser_bytes.load(Ordering::Relaxed);
    metrics.messages = messages.load(Ordering::Relaxed);
    Ok((acc, metrics))
}

/// One shuffle round: routes `holders` into `m` reducer slots.
///
/// `pub(crate)` because `split_aggregate`'s degraded fallback path reuses it
/// at the segment level (over `Vec<V>` aggregators) when the collective gang
/// exhausts its attempts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn shuffle_round<U, C>(
    cluster: &LocalCluster,
    op: u64,
    level: u64,
    holders: &[(ExecutorId, u64)],
    m: usize,
    nexec: usize,
    comb: &Arc<C>,
    zero: &U,
    ser_bytes: &Arc<AtomicU64>,
    messages: &Arc<AtomicU64>,
    metrics: &mut AggMetrics,
) -> EngineResult<Vec<(ExecutorId, u64)>>
where
    U: Payload + Clone + Send + Sync,
    C: Fn(U, U) -> U + Send + Sync + 'static,
{
    let inner = cluster.inner().clone();
    let target_exec = |j: usize| crate::task::partition_owner(j, nexec);
    let slot_of = move |j: usize| (level << 32) | j as u64;

    // Routing tables, computed on the driver like Spark's DAGScheduler.
    // send_plan[src executor] = [(source slot, target j, target executor)].
    let mut send_plan: std::collections::BTreeMap<ExecutorId, Vec<(u64, usize, ExecutorId)>> =
        Default::default();
    // recv_plan[dst executor] = ordered list of source executors (one entry
    // per incoming aggregator, grouped by source to respect stream FIFO).
    let mut recv_count: std::collections::BTreeMap<ExecutorId, std::collections::BTreeMap<ExecutorId, usize>> =
        Default::default();
    for (i, (src, slot)) in holders.iter().enumerate() {
        let j = i % m;
        let dst = target_exec(j);
        send_plan.entry(*src).or_default().push((*slot, j, dst));
        *recv_count.entry(dst).or_default().entry(*src).or_default() += 1;
    }

    let senders: Vec<ExecutorId> = send_plan.keys().copied().collect();
    let receivers: Vec<ExecutorId> = recv_count.keys().copied().collect();
    // Sends enqueue before receives so single-core executors cannot wedge.
    let mut stage_assignments = senders.clone();
    stage_assignments.extend(receivers.iter().copied());
    let n_send = senders.len();

    let send_plan = Arc::new(send_plan);
    let recv_count = Arc::new(recv_count);
    let label = format!("tree-shuffle-op{op}-l{level}");
    {
        let inner2 = inner.clone();
        let senders = senders.clone();
        let receivers = receivers.clone();
        let comb = comb.clone();
        let zero = zero.clone();
        let ser_bytes = ser_bytes.clone();
        let messages = messages.clone();
        let (_, attempts) = inner.run_stage(
            &label,
            &stage_assignments,
            move |idx, _attempt, ctx| {
                if idx < n_send {
                    let plan = &send_plan[&senders[idx]];
                    for (slot, j, dst) in plan {
                        let u: U = ctx
                            .objects
                            .take(ObjectId { op, slot: *slot })
                            .ok_or_else(|| TaskFailure { reason: format!("missing aggregator slot {slot}") })?;
                        let mut enc = Encoder::with_capacity(u.size_hint() + 8);
                        enc.put_usize(*j);
                        u.encode_into(&mut enc);
                        let frame = enc.finish();
                        ser_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
                        messages.fetch_add(1, Ordering::Relaxed);
                        inner2.bm_send(ctx.executor, *dst, frame)?;
                    }
                } else {
                    let me = receivers[idx - n_send];
                    for (src, count) in &recv_count[&me] {
                        for _ in 0..*count {
                            let frame = inner2.bm_recv(ctx.executor, *src)?;
                            let mut dec = Decoder::new(frame);
                            let j = dec.get_usize().map_err(TaskFailure::from)?;
                            let u = U::decode_from(&mut dec).map_err(TaskFailure::from)?;
                            let comb = comb.clone();
                            let zero = zero.clone();
                            ctx.objects.merge_in(ObjectId { op, slot: slot_of(j) }, u, move |a, b| {
                                let old = std::mem::replace(a, zero.clone());
                                *a = comb(old, b);
                            });
                        }
                    }
                }
                Ok(())
            },
            RecoveryPolicy::RetryTask,
        )?;
        metrics.task_attempts += attempts;
        metrics.stages += 1;
    }

    Ok((0..m).map(|j| (target_exec(j), slot_of(j))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterSpec;
    use crate::rdds::ParallelCollection;

    fn run_tree(parts: usize, imm: bool, executors: usize) -> (u64, AggMetrics) {
        let cluster = LocalCluster::new(ClusterSpec::local(executors, 2));
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=100u64).collect(), parts));
        tree_aggregate(
            &cluster,
            rdd,
            0u64,
            |acc, x| acc + *x,
            |a, b| a + b,
            TreeAggOpts { depth: 2, imm },
        )
        .unwrap()
    }

    #[test]
    fn tree_scale_matches_spark_formula() {
        assert_eq!(tree_scale(4, 2), 2);
        assert_eq!(tree_scale(48, 2), 7);
        assert_eq!(tree_scale(100, 2), 10);
        assert_eq!(tree_scale(1000, 3), 10);
        assert_eq!(tree_scale(1, 2), 2);
    }

    #[test]
    fn tree_aggregate_sums_correctly() {
        for parts in [1, 2, 7, 16, 48] {
            let (sum, m) = run_tree(parts, false, 4);
            assert_eq!(sum, 5050, "parts={parts}");
            assert_eq!(m.strategy, AggStrategy::Tree);
            assert!(m.stages >= 2);
        }
    }

    #[test]
    fn tree_aggregate_with_imm_matches() {
        for parts in [1, 5, 16] {
            let (sum, m) = run_tree(parts, true, 4);
            assert_eq!(sum, 5050, "parts={parts}");
            assert_eq!(m.strategy, AggStrategy::TreeImm);
        }
    }

    #[test]
    fn imm_reduces_messages_and_bytes() {
        let (_, plain) = run_tree(32, false, 4);
        let (_, imm) = run_tree(32, true, 4);
        assert!(
            imm.messages < plain.messages,
            "IMM should shrink message count: {} vs {}",
            imm.messages,
            plain.messages
        );
        assert!(imm.ser_bytes < plain.ser_bytes);
    }

    #[test]
    fn shuffle_rounds_trigger_for_many_partitions() {
        let (_, m) = run_tree(48, false, 4);
        // 48 partitions, scale 7: one shuffle round (48 -> 6) + compute + final.
        assert_eq!(m.stages, 3);
    }

    #[test]
    fn single_executor_tree_works() {
        let (sum, _) = run_tree(8, false, 1);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn compute_stage_fault_is_retried() {
        let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
        // The op id is deterministic per cluster: first op is 1.
        cluster.fault_plan().fail_once("tree-compute-op1", 0);
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=10u64).collect(), 4));
        let (sum, m) = tree_aggregate(
            &cluster,
            rdd,
            0u64,
            |acc, x| acc + *x,
            |a, b| a + b,
            TreeAggOpts::default(),
        )
        .unwrap();
        assert_eq!(sum, 55);
        // 4 partitions, scale 2: no shuffle round (4 <= 2 + 4/2), so all 4
        // partition aggregators go straight to the final stage.
        assert_eq!(m.task_attempts, 4 + 1 + 4, "4 compute + 1 retry + 4 final");
    }

    #[test]
    fn imm_stage_fault_resubmits_whole_stage_and_stays_correct() {
        let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
        cluster.fault_plan().fail_once("tree-compute-op1", 1);
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=10u64).collect(), 4));
        let (sum, m) = tree_aggregate(
            &cluster,
            rdd,
            0u64,
            |acc, x| acc + *x,
            |a, b| a + b,
            TreeAggOpts { depth: 2, imm: true },
        )
        .unwrap();
        assert_eq!(sum, 55, "resubmission must not double-count");
        assert!(m.task_attempts >= 8, "whole stage resubmitted");
    }
}
