//! Split aggregation — the Sparker contribution (paper §3.1, §4).
//!
//! The pipeline exactly follows the paper:
//!
//! 1. **Reduced-result stage (IMM)** — one task per partition folds its
//!    partition with `seqOp` and merges the result into the executor's
//!    shared aggregator in the mutable object manager. After the stage there
//!    is exactly one aggregator `U` per executor (executors with no
//!    partitions hold the zero value). Nothing has been serialized yet.
//! 2. **Statically-scheduled ring stage (the paper's `SpawnRDD`)** — one
//!    task pinned to every executor. Each task splits its aggregator into
//!    `P·N` segments by calling the user's `splitOp(u, i, n)` from `P`
//!    parallel threads, then runs ring reduce-scatter over the parallel
//!    directed ring through the scalable communicator, merging segments with
//!    the user's `reduceOp`. Each executor finishes owning `P` fully-reduced
//!    segments.
//! 3. **Gather + concat** — owned segments are serialized and collected to
//!    the driver over Spark's normal result path, where the user's
//!    `concatOp` reassembles the final value `V`.
//!
//! Compared to tree aggregation, per-executor traffic drops from
//! `O(log N)` whole aggregators to `(N−1)/N`-th of one aggregator, and the
//! driver receives exactly one aggregator's worth of bytes regardless of
//! cluster size.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sparker_obs::trace::ScopedSpan;
use sparker_obs::Layer;

use sparker_net::codec::{Decoder, Encoder, Payload};
use sparker_net::topology::ExecutorId;

use sparker_collectives::halving::recursive_halving_reduce_scatter_by;
use sparker_collectives::hierarchical::{hierarchical_reduce_scatter_chunked_by, node_topology_of};
use sparker_collectives::ring::{ring_reduce_scatter_chunked_by, OwnedSegment};
use sparker_collectives::segment::slice_bounds;

use sparker_tuner::{Algo, CostModel, Decision, JobShape, Selector};

use crate::cluster::{LocalCluster, RecoveryPolicy};
use crate::metrics::{AggMetrics, AggStrategy};
use crate::objects::ObjectId;
use crate::ops::basic::{fold_partition, partition_assignments};
use crate::ops::tree_aggregate::{shuffle_round, tree_scale};
use crate::rdd::{Data, RddRef};
use crate::task::{EngineError, EngineResult, TaskFailure};

/// Slot base of the fallback path's per-executor segment vectors. Disjoint
/// from the IMM slots (`0..nexec`), the allreduce resident copy (`1 << 48`)
/// and the shuffle-round slots (`level << 32 | j`, small `level`).
const FALLBACK_SLOT_BASE: u64 = 2 << 48;

/// Which reduce-scatter algorithm the ring stage runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsAlgorithm {
    /// Ring reduce-scatter over the PDR (the paper's choice).
    Ring,
    /// Recursive halving (Rabenseifner) — the ablation alternative.
    Halving,
    /// Two-level hierarchical reduce-scatter: intra-node fold to node
    /// leaders, chunked ring over the leaders-only sub-ring (see
    /// `sparker_collectives::hierarchical` and DESIGN.md §5j).
    Hierarchical,
}

/// How `split_aggregate` picks its reduction algorithm (DESIGN.md §5j).
///
/// `None` on [`SplitAggOpts::selector`] keeps the legacy behavior: run
/// exactly `SplitAggOpts::{algorithm, chunks}`. Both variants are `Copy`
/// (the cost model is five scalars), so `SplitAggOpts` stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectorOpts {
    /// Run this tuner-menu entry, overriding `algorithm`/`chunks`.
    /// `Algo::Tree` runs the shuffle-tree path as the *primary* (no
    /// downgrade accounting), which the legacy knobs cannot express.
    Forced(Algo),
    /// Rank the full menu under this calibrated cost model using the
    /// cluster's node topology and the `hint_*` fields, and run the
    /// predicted-fastest algorithm.
    Auto(CostModel),
}

/// How tasks merge into the shared per-executor aggregator (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImmMode {
    /// Each task folds its partition into a private aggregator, then merges
    /// it into the shared value once (one short critical section per task).
    #[default]
    LocalFold,
    /// The paper-literal variant: each task folds its partition *directly*
    /// into the shared value, holding its lock for the whole fold. No
    /// second aggregator allocation, but tasks on one executor serialize.
    SharedFold,
}

/// Options for [`split_aggregate`].
#[derive(Debug, Clone, Copy)]
pub struct SplitAggOpts {
    /// PDR channel parallelism; defaults to the cluster spec's value.
    pub parallelism: Option<usize>,
    pub algorithm: RsAlgorithm,
    /// In-memory-merge strategy of the compute stage.
    pub imm_mode: ImmMode,
    /// Pipeline chunks per ring segment (`1` = classic unpipelined ring).
    /// With `C > 1` the ring stage splits the aggregator into `P·N·C`
    /// segments and overlaps chunk sends with chunk merges inside every
    /// ring step. Requires [`RsAlgorithm::Ring`].
    pub chunks: usize,
    /// Scheduler job this op runs under; stamped onto stage history records
    /// and [`AggMetrics::job_id`]. 0 (the default) means "no job" and keeps
    /// single-job runs byte-identical to before.
    pub job_id: u64,
    /// Epoch namespace for the ring's collective frames (see
    /// [`sparker_net::epoch::namespaced`]): concurrent jobs get distinct
    /// namespaces so their rings can never accept each other's frames. Must
    /// be `< epoch::NS_COUNT`; 0 is the single-job default.
    pub epoch_ns: u32,
    /// Algorithm selection policy; `None` (default) honors
    /// `algorithm`/`chunks` exactly as before the tuner existed.
    pub selector: Option<SelectorOpts>,
    /// Dense wire size of one aggregator in bytes, for [`SelectorOpts::Auto`]
    /// cost prediction. 0 (unknown) is treated as 1 byte, which makes the
    /// prediction latency-dominated.
    pub hint_bytes: u64,
    /// Expected non-zero fraction of the aggregator in permille for
    /// [`SelectorOpts::Auto`]; 1000 (the default) means fully dense.
    pub hint_density_permille: u32,
}

impl Default for SplitAggOpts {
    fn default() -> Self {
        Self {
            parallelism: None,
            algorithm: RsAlgorithm::Ring,
            imm_mode: ImmMode::LocalFold,
            chunks: 1,
            job_id: 0,
            epoch_ns: 0,
            selector: None,
            hint_bytes: 0,
            hint_density_permille: 1000,
        }
    }
}

/// Runs split aggregation; returns the concatenated segment value `V` and
/// the compute/reduce decomposition.
///
/// Closure roles mirror the paper's Figure 6 (`merge_op` is the additional
/// executor-local merge IMM needs — see DESIGN.md §5a):
/// * `seq_op(acc, item) -> acc` — folds one sample into an aggregator.
/// * `merge_op(&mut a, b)` — merges two aggregators inside one executor.
/// * `split_op(&u, i, n) -> V` — extracts segment `i` of `n`.
/// * `reduce_op(&mut a, b)` — merges two aggregator-segments.
/// * `concat_op(segments) -> V` — reassembles the final value.
#[allow(clippy::too_many_arguments)]
pub fn split_aggregate<T, U, V, S, M, Sp, R, C>(
    cluster: &LocalCluster,
    rdd: RddRef<T>,
    zero: U,
    seq_op: S,
    merge_op: M,
    split_op: Sp,
    reduce_op: R,
    concat_op: C,
    opts: SplitAggOpts,
) -> EngineResult<(V, AggMetrics)>
where
    T: Data,
    U: Clone + Send + Sync + 'static,
    V: Payload + Clone + Send + Sync + 'static,
    S: Fn(U, &T) -> U + Send + Sync + 'static,
    M: Fn(&mut U, U) + Send + Sync + 'static,
    Sp: Fn(&U, usize, usize) -> V + Send + Sync + 'static,
    R: Fn(&mut V, V) + Send + Sync + 'static,
    C: FnOnce(Vec<V>) -> V,
{
    let inner = cluster.inner().clone();
    let _action = inner.lock_action();
    let op = inner.next_op();
    let parts = rdd.num_partitions();
    if parts == 0 {
        return Err(EngineError::Invalid("split_aggregate over zero partitions".into()));
    }
    let nexec = inner.num_executors();
    let parallelism = opts.parallelism.unwrap_or(inner.spec().ring_parallelism);
    if opts.chunks == 0 {
        return Err(EngineError::Invalid("split_aggregate needs chunks >= 1".into()));
    }
    if opts.epoch_ns >= sparker_net::epoch::NS_COUNT {
        return Err(EngineError::Invalid(format!(
            "epoch namespace {} out of range (< {})",
            opts.epoch_ns,
            sparker_net::epoch::NS_COUNT
        )));
    }

    // --- Algorithm selection (DESIGN.md §5j) -----------------------------
    // Resolve the selector policy to an effective (algorithm, chunks,
    // tree_primary) triple. `tuning` keeps the selector + decision around so
    // the measured reduce time can be fed back as the
    // `tuner.predict_vs_actual_permille` gauge.
    let picked: Option<Algo> = match opts.selector {
        None => None,
        Some(SelectorOpts::Forced(algo)) => Some(algo),
        Some(SelectorOpts::Auto(_)) => None, // resolved below with the topology
    };
    let mut tuning: Option<(Selector, Decision)> = None;
    let picked = if let Some(SelectorOpts::Auto(model)) = opts.selector {
        let topo = sparker_net::NodeTopology::group(inner.executor_infos());
        let shape = JobShape {
            bytes: opts.hint_bytes.max(1),
            density_permille: opts.hint_density_permille.min(1000),
            executors: nexec,
            nodes: topo.num_nodes(),
            parallelism,
        };
        let selector = Selector::new(model);
        let decision = selector.select(&shape);
        let algo = decision.algo;
        tuning = Some((selector, decision));
        Some(algo)
    } else {
        picked
    };
    let (algorithm, chunks, tree_primary) = match picked {
        None => (opts.algorithm, opts.chunks, false),
        Some(Algo::FlatRing) => (RsAlgorithm::Ring, 1, false),
        Some(Algo::ChunkedRing(c)) => (RsAlgorithm::Ring, c as usize, false),
        Some(Algo::Halving) => (RsAlgorithm::Halving, 1, false),
        Some(Algo::Hierarchical) => (RsAlgorithm::Hierarchical, 1, false),
        // Tree-as-primary reuses the fallback machinery below, entered
        // deliberately rather than after gang exhaustion.
        Some(Algo::Tree) => (RsAlgorithm::Ring, 1, true),
    };
    if chunks > 1 && !matches!(algorithm, RsAlgorithm::Ring | RsAlgorithm::Hierarchical) {
        return Err(EngineError::Invalid(
            "chunk pipelining (chunks > 1) requires RsAlgorithm::Ring or Hierarchical".into(),
        ));
    }

    // Stamp every stage record of this op with the job id; the guard resets
    // the stamp on every exit path (the action lock is held throughout, so
    // no other op can observe the stamp).
    inner.history().set_current_job(opts.job_id);
    struct JobStamp<'a>(&'a crate::history::History);
    impl Drop for JobStamp<'_> {
        fn drop(&mut self) {
            self.0.set_current_job(0);
        }
    }
    let _job_stamp = JobStamp(inner.history());

    let strategy = match algorithm {
        RsAlgorithm::Ring => AggStrategy::Split,
        RsAlgorithm::Halving => AggStrategy::SplitHalving,
        RsAlgorithm::Hierarchical => AggStrategy::SplitHier,
    };
    let mut metrics = AggMetrics::new(strategy);
    metrics.job_id = opts.job_id;
    let ser_bytes = Arc::new(AtomicU64::new(0));
    // Op phases are Driver-layer scoped spans; AggMetrics durations are read
    // back from them, so the metrics view and the exported trace agree.
    let scope = inner.history().scope();

    // --- Stage 1: reduced-result stage (IMM) ----------------------------
    let compute_span =
        ScopedSpan::begin(scope, Layer::Driver, format!("{}-compute-op{op}", strategy.name()));
    let assignments = partition_assignments(&inner, &rdd);
    let imm_label = format!("split-imm-op{op}");
    {
        let rdd = rdd.clone();
        let seq = Arc::new(seq_op);
        let merge = Arc::new(merge_op);
        let zero = zero.clone();
        let imm_mode = opts.imm_mode;
        let (_, attempts) = inner.run_stage(
            &imm_label,
            &assignments,
            move |idx, _attempt, ctx| {
                let id = ObjectId { op, slot: ctx.executor.0 as u64 };
                match imm_mode {
                    ImmMode::LocalFold => {
                        let acc = fold_partition(&rdd, idx, ctx, zero.clone(), seq.as_ref())?;
                        let merge = merge.clone();
                        ctx.objects.merge_in(id, acc, move |a, b| merge(a, b));
                    }
                    ImmMode::SharedFold => {
                        // Fold the partition directly into the shared value
                        // under its lock (paper-literal §3.2 semantics).
                        let rdd = &rdd;
                        let seq = &seq;
                        let zero = &zero;
                        ctx.objects.fold_in(id, || zero.clone(), |mut acc: U| {
                            for item in rdd.compute(idx, ctx) {
                                acc = seq(acc, &item);
                            }
                            acc
                        });
                    }
                }
                Ok(())
            },
            RecoveryPolicy::ResubmitStage { op },
        )?;
        metrics.task_attempts += attempts;
        metrics.stages += 1;
    }
    metrics.compute = compute_span.finish();

    // --- Stage 2: SpawnRDD ring stage ------------------------------------
    let reduce_span =
        ScopedSpan::begin(scope, Layer::Driver, format!("{}-reduce-op{op}", strategy.name()));
    let sc_before = cluster.sc_stats();
    let ring = inner.build_ring(parallelism);
    let n = ring.size();
    // Ring RS needs exactly P*N segments; halving needs a multiple of the
    // largest power of two <= N; hierarchical needs P*L*C where L is the
    // number of *nodes* in the ring (leaders own every segment; non-leaders
    // own none). Pad the segment count up when needed.
    let total_segments = match algorithm {
        RsAlgorithm::Ring => parallelism * n * chunks,
        RsAlgorithm::Halving => {
            let mut p2 = 1usize;
            while p2 * 2 <= n {
                p2 *= 2;
            }
            (parallelism * n).div_ceil(p2) * p2
        }
        RsAlgorithm::Hierarchical => parallelism * node_topology_of(&ring).num_nodes() * chunks,
    };

    let ring_label = format!("split-ring-op{op}");
    let all_execs: Vec<ExecutorId> = (0..nexec).map(|e| ExecutorId(e as u32)).collect();
    let split = Arc::new(split_op);
    let reduce = Arc::new(reduce_op);
    let ring_outcome = if tree_primary {
        // The selector decided the collective path loses to the shuffle
        // tree for this shape; enter the tree arm below directly, with the
        // per-executor aggregators intact (only the IMM stage has run).
        Err(EngineError::TaskFailed {
            stage: ring_label.clone(),
            task: 0,
            attempts: 0,
            reason: "selector chose tree aggregation as the primary path".into(),
        })
    } else {
        let inner2 = inner.clone();
        let ring = ring.clone();
        let split = split.clone();
        let reduce = reduce.clone();
        let zero = zero.clone();
        let ser_bytes = ser_bytes.clone();
        let epoch_ns = opts.epoch_ns;
        inner.run_stage(
            &ring_label,
            &all_execs,
            move |_idx, attempt, ctx| {
                // Peek, don't take: a gang resubmission re-reads the same
                // input aggregator, and the tree fallback needs it intact
                // if the gang exhausts its attempts.
                let u: U = ctx
                    .objects
                    .with(ObjectId { op, slot: ctx.executor.0 as u64 }, |u: &U| u.clone())
                    .unwrap_or_else(|| zero.clone());

                // Parallel split: P threads each produce a contiguous chunk
                // of the segment index space (paper: "multiple threads can
                // split a single aggregator in parallel").
                let segments: Vec<V> = {
                    let split = &split;
                    let u = &u;
                    let mut chunks: Vec<Vec<V>> = Vec::with_capacity(parallelism);
                    std::thread::scope(|s| {
                        let handles: Vec<_> = (0..parallelism)
                            .map(|t| {
                                s.spawn(move || {
                                    let (lo, hi) = slice_bounds(total_segments, t, parallelism);
                                    (lo..hi).map(|g| split(u, g, total_segments)).collect::<Vec<V>>()
                                })
                            })
                            .collect();
                        for h in handles {
                            chunks.push(h.join().expect("split worker panicked"));
                        }
                    });
                    chunks.into_iter().flatten().collect()
                };
                drop(u);

                // Fence frames to this job's epoch namespace: a concurrent
                // job's ring (different namespace) can never match, whatever
                // its attempt counter.
                let comm = inner2.collective_comm(
                    &ring,
                    ctx.executor,
                    op,
                    sparker_net::epoch::namespaced(epoch_ns, attempt),
                );
                let owned: Vec<OwnedSegment<V>> = match algorithm {
                    RsAlgorithm::Ring => ring_reduce_scatter_chunked_by(
                        &comm,
                        segments,
                        &|a: &mut V, b: V| reduce(a, b),
                        chunks,
                    )
                    .map_err(TaskFailure::from)?,
                    RsAlgorithm::Halving => recursive_halving_reduce_scatter_by(
                        &comm,
                        segments,
                        &|a: &mut V, b: V| reduce(a, b),
                    )
                    .map_err(TaskFailure::from)?,
                    RsAlgorithm::Hierarchical => hierarchical_reduce_scatter_chunked_by(
                        &comm,
                        segments,
                        &|a: &mut V, b: V| reduce(a, b),
                        chunks,
                    )
                    .map_err(TaskFailure::from)?,
                };

                // Gather: serialize owned segments and report them as this
                // task's result over the normal (BlockManager) result path.
                let mut enc = Encoder::new();
                enc.put_usize(owned.len());
                for o in &owned {
                    enc.put_usize(o.index);
                    o.segment.encode_into(&mut enc);
                }
                let frame = enc.finish();
                ser_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
                inner2.bm_send_to_driver(ctx.executor, frame)?;
                Ok(owned.len())
            },
            RecoveryPolicy::ResubmitGang { op },
        )
    };

    // Aggregator-carrying messages beyond the sc counters (gather frames and
    // fallback shuffle frames travel the BM path).
    let extra_messages: u64;
    let result = match ring_outcome {
        Ok((_, attempts)) => {
            metrics.task_attempts += attempts;
            metrics.stages += 1;

            // --- Driver: gather + concat --------------------------------
            let merge_span = ScopedSpan::begin(
                scope,
                Layer::Driver,
                format!("{}-driver-merge-op{op}", strategy.name()),
            );
            let mut slots: Vec<Option<V>> = (0..total_segments).map(|_| None).collect();
            for exec in &all_execs {
                let frame = inner.driver_recv(*exec)?;
                metrics.bytes_to_driver += frame.len() as u64;
                let mut dec = Decoder::new(frame);
                let count = dec.get_usize()?;
                for _ in 0..count {
                    let idx = dec.get_usize()?;
                    let v = V::decode_from(&mut dec)?;
                    if idx >= total_segments || slots[idx].is_some() {
                        return Err(EngineError::Invalid(format!(
                            "segment {idx} duplicated or out of range"
                        )));
                    }
                    slots[idx] = Some(v);
                }
            }
            let segments: Vec<V> = slots
                .into_iter()
                .enumerate()
                .map(|(i, s)| s.ok_or_else(|| EngineError::Invalid(format!("segment {i} missing"))))
                .collect::<EngineResult<_>>()?;
            let result = concat_op(segments);
            metrics.driver_merge = merge_span.finish();
            extra_messages = nexec as u64;
            result
        }
        Err(EngineError::TaskFailed { stage, .. }) if stage == ring_label => {
            // --- Graceful degradation: tree fallback --------------------
            // The gang exhausted `max_collective_attempts`. The collective
            // path is unusable, but the per-executor aggregators are intact
            // (the ring stage only peeked), so finish the op over the
            // BlockManager path with a tree of whole segment vectors —
            // slower, but recoverable one task at a time. When the selector
            // chose the tree *as the primary* this is not a downgrade: no
            // gang ever ran, so nothing is recorded as degraded.
            if !tree_primary {
                cluster.history().record(
                    &format!("split-downgrade-op{op}"),
                    0,
                    0,
                    std::time::Duration::ZERO,
                );
                metrics.downgraded = true;
            }
            let messages = Arc::new(AtomicU64::new(0));

            // Seed: each executor splits its aggregator into the full
            // segment vector (same indexing as the ring path) for the
            // shuffle tree. Replace-merge keeps retries idempotent.
            let seed_label = format!("split-fallback-op{op}");
            {
                let split = split.clone();
                let zero = zero.clone();
                let (_, attempts) = inner.run_stage(
                    &seed_label,
                    &all_execs,
                    move |_idx, _attempt, ctx| {
                        let u: U = ctx
                            .objects
                            .with(ObjectId { op, slot: ctx.executor.0 as u64 }, |u: &U| u.clone())
                            .unwrap_or_else(|| zero.clone());
                        let segs: Vec<V> =
                            (0..total_segments).map(|g| split(&u, g, total_segments)).collect();
                        ctx.objects.merge_in(
                            ObjectId { op, slot: FALLBACK_SLOT_BASE | ctx.executor.0 as u64 },
                            segs,
                            |a, b| *a = b,
                        );
                        Ok(())
                    },
                    RecoveryPolicy::RetryTask,
                )?;
                metrics.task_attempts += attempts;
                metrics.stages += 1;
            }

            // Shuffle the segment vectors down a tree (reusing the
            // tree-aggregate machinery) with an element-wise merge.
            let comb = {
                let reduce = reduce.clone();
                Arc::new(move |mut a: Vec<V>, b: Vec<V>| {
                    if a.is_empty() {
                        return b;
                    }
                    for (x, y) in a.iter_mut().zip(b) {
                        reduce(x, y);
                    }
                    a
                })
            };
            let fb_zero: Vec<V> = Vec::new();
            let mut holders: Vec<(ExecutorId, u64)> = all_execs
                .iter()
                .map(|e| (*e, FALLBACK_SLOT_BASE | e.0 as u64))
                .collect();
            let scale = tree_scale(nexec, inner.spec().tree_depth);
            let mut level: u64 = 1;
            while holders.len() > scale + holders.len() / scale {
                let m = (holders.len() / scale).max(1);
                holders = shuffle_round(
                    cluster, op, level, &holders, m, nexec, &comb, &fb_zero, &ser_bytes,
                    &messages, &mut metrics,
                )?;
                level += 1;
            }

            // Final: surviving holders ship their vectors to the driver.
            let final_label = format!("split-fallback-final-op{op}");
            let final_assignments: Vec<ExecutorId> = holders.iter().map(|(e, _)| *e).collect();
            {
                let slots: Vec<u64> = holders.iter().map(|(_, s)| *s).collect();
                let send_inner = inner.clone();
                let ser_bytes = ser_bytes.clone();
                let (_, attempts) = inner.run_stage(
                    &final_label,
                    &final_assignments,
                    move |idx, _attempt, ctx| {
                        // Peek so a retried send still finds its vector.
                        let segs: Vec<V> = ctx
                            .objects
                            .with(ObjectId { op, slot: slots[idx] }, |v: &Vec<V>| v.clone())
                            .ok_or_else(|| TaskFailure {
                                reason: format!("missing fallback slot {}", slots[idx]),
                            })?;
                        let frame = segs.to_frame();
                        ser_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
                        send_inner.bm_send_to_driver(ctx.executor, frame)?;
                        Ok(())
                    },
                    RecoveryPolicy::RetryTask,
                )?;
                metrics.task_attempts += attempts;
                metrics.stages += 1;
            }

            let merge_span = ScopedSpan::begin(
                scope,
                Layer::Driver,
                format!("{}-driver-merge-op{op}", strategy.name()),
            );
            let mut acc: Vec<V> = Vec::new();
            for exec in &final_assignments {
                let frame = inner.driver_recv(*exec)?;
                metrics.bytes_to_driver += frame.len() as u64;
                let segs = Vec::<V>::from_frame(frame)?;
                if acc.is_empty() {
                    acc = segs;
                } else {
                    for (x, y) in acc.iter_mut().zip(segs) {
                        reduce(x, y);
                    }
                }
            }
            if acc.len() != total_segments {
                return Err(EngineError::Invalid(format!(
                    "fallback produced {} segments, expected {total_segments}",
                    acc.len()
                )));
            }
            let result = concat_op(acc);
            metrics.driver_merge = merge_span.finish();
            extra_messages = messages.load(Ordering::Relaxed) + final_assignments.len() as u64;
            result
        }
        Err(e) => return Err(e),
    };

    // Everything the op parked in executor object managers — peeked inputs,
    // fallback vectors, shuffle slots — is dead now.
    for e in &all_execs {
        inner.executor_ctx(*e).objects.clear_op(op);
    }
    metrics.reduce = reduce_span.finish();
    if let Some((selector, decision)) = &tuning {
        // Feed the measured reduce time back: exported traces now carry
        // predicted/actual permille next to the spans they predicted.
        selector.observe(decision, metrics.reduce.as_secs_f64());
    }

    let sc_after = cluster.sc_stats();
    metrics.ser_bytes =
        ser_bytes.load(Ordering::Relaxed) + (sc_after.bytes - sc_before.bytes);
    metrics.messages = (sc_after.messages - sc_before.messages) + extra_messages;
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterSpec;
    use crate::rdds::ParallelCollection;
    use sparker_net::codec::F64Array;

    /// Sums vectors of f64 across partitions via split aggregation.
    fn run_split(
        executors: usize,
        cores: usize,
        parts: usize,
        dim: usize,
        opts: SplitAggOpts,
    ) -> (Vec<f64>, AggMetrics) {
        run_split_on(ClusterSpec::local(executors, cores), parts, dim, opts)
    }

    /// Like [`run_split`] but over an arbitrary cluster shape (hierarchical
    /// paths need `spec.nodes > 1` so executors land on distinct hosts).
    fn run_split_on(
        spec: ClusterSpec,
        parts: usize,
        dim: usize,
        opts: SplitAggOpts,
    ) -> (Vec<f64>, AggMetrics) {
        let cluster = LocalCluster::new(spec);
        let data: Vec<u64> = (1..=64).collect();
        let expected_count = data.len() as f64;
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new(data, parts));
        let (v, m) = split_aggregate(
            &cluster,
            rdd,
            vec![0.0f64; dim],
            move |mut acc: Vec<f64>, x: &u64| {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a += (*x as f64) * (i + 1) as f64;
                }
                acc
            },
            |a: &mut Vec<f64>, b: Vec<f64>| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            },
            |u: &Vec<f64>, i: usize, n: usize| {
                let (lo, hi) = slice_bounds(u.len(), i, n);
                F64Array(u[lo..hi].to_vec())
            },
            |a: &mut F64Array, b: F64Array| {
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            |segs: Vec<F64Array>| {
                F64Array(segs.into_iter().flat_map(|s| s.0).collect())
            },
            opts,
        )
        .unwrap();
        let _ = expected_count;
        (v.0, m)
    }

    fn expected(dim: usize) -> Vec<f64> {
        let total: f64 = (1..=64u64).map(|x| x as f64).sum();
        (0..dim).map(|i| total * (i + 1) as f64).collect()
    }

    #[test]
    fn split_aggregate_matches_sequential_sum() {
        let (v, m) = run_split(4, 2, 8, 37, SplitAggOpts::default());
        assert_eq!(v, expected(37));
        assert_eq!(m.strategy, AggStrategy::Split);
        assert_eq!(m.stages, 2);
    }

    #[test]
    fn split_aggregate_under_epoch_namespace_is_bit_exact() {
        let opts = SplitAggOpts { epoch_ns: 17, job_id: 9, ..Default::default() };
        let (v, m) = run_split(4, 2, 8, 37, opts);
        assert_eq!(v, expected(37));
        assert_eq!(m.job_id, 9, "metrics carry the job id");
    }

    #[test]
    fn split_aggregate_rejects_out_of_range_namespace() {
        use crate::config::ClusterSpec;
        use crate::rdds::ParallelCollection;
        let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new(vec![1, 2, 3, 4], 2));
        let opts =
            SplitAggOpts { epoch_ns: sparker_net::epoch::NS_COUNT, ..Default::default() };
        let got = split_aggregate(
            &cluster,
            rdd,
            0u64,
            |a: u64, x: &u64| a + x,
            |a: &mut u64, b: u64| *a += b,
            |u: &u64, i: usize, _n: usize| if i == 0 { *u } else { 0 },
            |a: &mut u64, b: u64| *a += b,
            |segs: Vec<u64>| segs.into_iter().sum::<u64>(),
            opts,
        );
        assert!(matches!(got, Err(EngineError::Invalid(_))), "{got:?}");
    }

    #[test]
    fn split_aggregate_stamps_history_with_job_id() {
        use crate::config::ClusterSpec;
        use crate::rdds::ParallelCollection;
        let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new(vec![1, 2, 3, 4], 2));
        let opts = SplitAggOpts { job_id: 5, ..Default::default() };
        let (_, _) = split_aggregate(
            &cluster,
            rdd,
            0u64,
            |a: u64, x: &u64| a + x,
            |a: &mut u64, b: u64| *a += b,
            |u: &u64, i: usize, _n: usize| if i == 0 { *u } else { 0 },
            |a: &mut u64, b: u64| *a += b,
            |segs: Vec<u64>| segs.into_iter().sum::<u64>(),
            opts,
        )
        .unwrap();
        let events = cluster.history().snapshot();
        assert!(!events.is_empty());
        assert!(
            events.iter().all(|e| e.job_id == 5),
            "every stage of the op carries the job id: {events:?}"
        );
        assert_eq!(cluster.history().current_job(), 0, "stamp reset after the op");
    }

    #[test]
    fn split_aggregate_single_executor() {
        let (v, _) = run_split(1, 2, 4, 10, SplitAggOpts::default());
        assert_eq!(v, expected(10));
    }

    #[test]
    fn split_aggregate_more_executors_than_partitions() {
        // Executors without partitions contribute the zero aggregator.
        let (v, _) = run_split(6, 1, 2, 12, SplitAggOpts::default());
        assert_eq!(v, expected(12));
    }

    #[test]
    fn split_aggregate_parallelism_sweep() {
        for p in [1, 2, 4, 8] {
            let (v, _) = run_split(
                3,
                2,
                6,
                29,
                SplitAggOpts { parallelism: Some(p), ..Default::default() },
            );
            assert_eq!(v, expected(29), "parallelism {p}");
        }
    }

    #[test]
    fn split_aggregate_halving_algorithm() {
        for execs in [2, 3, 4, 5] {
            let (v, m) = run_split(
                execs,
                2,
                8,
                31,
                SplitAggOpts {
                    parallelism: Some(2),
                    algorithm: RsAlgorithm::Halving,
                    ..Default::default()
                },
            );
            assert_eq!(v, expected(31), "executors {execs}");
            assert_eq!(m.strategy, AggStrategy::SplitHalving);
        }
    }

    #[test]
    fn dimension_smaller_than_segments() {
        // 37-dim vector split into P*N = 16 segments: some segments are
        // empty slices; concat must still reassemble exactly.
        let (v, _) = run_split(8, 1, 8, 7, SplitAggOpts { parallelism: Some(2), ..Default::default() });
        assert_eq!(v, expected(7));
    }

    #[test]
    fn shared_fold_matches_local_fold() {
        for imm_mode in [ImmMode::LocalFold, ImmMode::SharedFold] {
            let (v, _) = run_split(
                3,
                2,
                9,
                41,
                SplitAggOpts { parallelism: Some(2), imm_mode, ..Default::default() },
            );
            assert_eq!(v, expected(41), "{imm_mode:?}");
        }
    }

    #[test]
    fn shared_fold_survives_stage_resubmission() {
        let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
        cluster.fault_plan().fail_once("split-imm-op1", 2);
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=12).collect(), 4));
        let (v, _) = split_aggregate(
            &cluster,
            rdd,
            0.0f64,
            |acc, x| acc + *x as f64,
            |a, b| *a += b,
            |u, i, _n| if i == 0 { *u } else { 0.0 },
            |a, b| *a += b,
            |segs| segs.into_iter().sum::<f64>(),
            SplitAggOpts {
                parallelism: Some(1),
                imm_mode: ImmMode::SharedFold,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(v, 78.0);
    }

    #[test]
    fn imm_stage_fault_resubmits_and_result_stays_correct() {
        let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
        cluster.fault_plan().fail_once("split-imm-op1", 1);
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=10).collect(), 4));
        let (v, m) = split_aggregate(
            &cluster,
            rdd,
            0.0f64,
            |acc, x| acc + *x as f64,
            |a, b| *a += b,
            |u, i, _n| if i == 0 { *u } else { 0.0 },
            |a, b| *a += b,
            |segs| segs.into_iter().sum::<f64>(),
            SplitAggOpts { parallelism: Some(1), ..Default::default() },
        )
        .unwrap();
        assert_eq!(v, 55.0);
        assert!(m.task_attempts > 4 + 2, "stage must have been resubmitted");
    }

    #[test]
    fn chunk_pipelining_matches_unpipelined() {
        // Integer-valued data (sums of whole u64s scaled by integer factors):
        // every merge association is exact, so all chunk counts must agree
        // bitwise with the unpipelined result and the sequential expectation.
        let want = expected(37);
        for chunks in [1usize, 2, 4] {
            let (v, m) = run_split(
                4,
                2,
                8,
                37,
                SplitAggOpts { parallelism: Some(2), chunks, ..Default::default() },
            );
            assert_eq!(v, want, "chunks = {chunks}");
            assert_eq!(m.stages, 2, "chunks = {chunks}");
        }
    }

    #[test]
    fn chunking_requires_ring_algorithm() {
        let cluster = LocalCluster::new(ClusterSpec::local(2, 1));
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=4).collect(), 2));
        let err = split_aggregate(
            &cluster,
            rdd,
            0.0f64,
            |acc, x| acc + *x as f64,
            |a, b| *a += b,
            |u, i, _n| if i == 0 { *u } else { 0.0 },
            |a, b| *a += b,
            |segs: Vec<f64>| segs.into_iter().sum::<f64>(),
            SplitAggOpts { algorithm: RsAlgorithm::Halving, chunks: 2, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Invalid(_)), "{err:?}");
    }

    /// A 2-node × 3-executor spec: hosts "node-000"/"node-001" interleave
    /// round-robin, so the hierarchical path has real intra/inter structure.
    fn two_node_spec() -> ClusterSpec {
        let mut spec = ClusterSpec::local(6, 2);
        spec.nodes = 2;
        spec.executors_per_node = 3;
        spec
    }

    #[test]
    fn hierarchical_algorithm_matches_sequential_sum() {
        for chunks in [1usize, 2, 3] {
            let (v, m) = run_split_on(
                two_node_spec(),
                8,
                37,
                SplitAggOpts {
                    parallelism: Some(2),
                    algorithm: RsAlgorithm::Hierarchical,
                    chunks,
                    ..Default::default()
                },
            );
            assert_eq!(v, expected(37), "chunks = {chunks}");
            assert_eq!(m.strategy, AggStrategy::SplitHier);
            assert_eq!(m.stages, 2);
            assert!(!m.downgraded);
        }
    }

    #[test]
    fn hierarchical_single_node_degenerates_cleanly() {
        // One host: every executor folds to a single leader, the leader
        // sub-ring has size 1, and the result must still be exact.
        let (v, m) = run_split(
            4,
            2,
            8,
            31,
            SplitAggOpts {
                parallelism: Some(2),
                algorithm: RsAlgorithm::Hierarchical,
                ..Default::default()
            },
        );
        assert_eq!(v, expected(31));
        assert_eq!(m.strategy, AggStrategy::SplitHier);
    }

    #[test]
    fn forced_selector_overrides_legacy_knobs() {
        use sparker_tuner::Algo;
        // Legacy knobs say flat ring; the forced selector runs hierarchical.
        let (v, m) = run_split_on(
            two_node_spec(),
            8,
            29,
            SplitAggOpts {
                parallelism: Some(2),
                selector: Some(SelectorOpts::Forced(Algo::Hierarchical)),
                ..Default::default()
            },
        );
        assert_eq!(v, expected(29));
        assert_eq!(m.strategy, AggStrategy::SplitHier);
    }

    #[test]
    fn forced_tree_is_primary_not_a_downgrade() {
        use sparker_tuner::Algo;
        let cluster = LocalCluster::new(two_node_spec());
        let data: Vec<u64> = (1..=64).collect();
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new(data, 8));
        let (v, m) = split_aggregate(
            &cluster,
            rdd,
            0.0f64,
            |acc, x| acc + *x as f64,
            |a, b| *a += b,
            |u, i, _n| if i == 0 { *u } else { 0.0 },
            |a, b| *a += b,
            |segs: Vec<f64>| segs.into_iter().sum::<f64>(),
            SplitAggOpts {
                parallelism: Some(2),
                selector: Some(SelectorOpts::Forced(Algo::Tree)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(v, 2080.0);
        assert!(!m.downgraded, "a selected tree primary is not a downgrade");
        assert!(
            !cluster.history().snapshot().iter().any(|e| e.label.contains("downgrade")),
            "no downgrade event for a tree primary"
        );
    }

    #[test]
    fn auto_selector_is_exact_and_records_its_decision() {
        use sparker_tuner::CostModel;
        sparker_obs::metrics::reset();
        // 4 MiB dense aggregator on a 2-node cluster: the calibrated-default
        // model must pick a collective (not tree) and the result stays exact.
        let (v, m) = run_split_on(
            two_node_spec(),
            8,
            37,
            SplitAggOpts {
                parallelism: Some(2),
                selector: Some(SelectorOpts::Auto(CostModel::default_model())),
                hint_bytes: 4 << 20,
                ..Default::default()
            },
        );
        assert_eq!(v, expected(37));
        assert!(!m.downgraded);
        let snap = sparker_obs::metrics::snapshot();
        assert!(
            snap.iter().any(|s| s.name.starts_with("tuner.selected.")),
            "selector decision must be exported: {snap:?}"
        );
        assert!(
            snap.iter().any(|s| s.name == "tuner.predict_vs_actual_permille"),
            "observe() must publish the feedback gauge: {snap:?}"
        );
    }

    #[test]
    fn driver_gets_exactly_one_aggregator_of_bytes() {
        let dim = 1000;
        let (_, m) = run_split(4, 2, 8, dim, SplitAggOpts::default());
        let payload = (dim * 8) as u64;
        // Headers add a little; the point is it is ~1x the aggregator, not N x.
        assert!(m.bytes_to_driver >= payload);
        assert!(m.bytes_to_driver < payload * 2, "driver got {} bytes", m.bytes_to_driver);
    }
}
