//! Allreduce aggregation — an extension beyond the paper.
//!
//! The paper's §6 observes that once split aggregation removes the
//! reduction bottleneck, **the driver becomes the next bottleneck**: the
//! reduced aggregator still funnels into the driver every iteration, and
//! the updated model broadcasts back out. The classic fix (what
//! parameter-server-free training systems converged on) is **allreduce**:
//! finish the ring reduce-scatter with a ring allgather so *every executor*
//! holds the fully-reduced value, and keep it there.
//!
//! [`allreduce_aggregate`] does exactly that on top of the same SAI
//! callbacks: after it completes, each executor's mutable object manager
//! holds a complete copy of the reduced value (retrievable in later stages
//! via [`executor_copy_slot`]), and the driver receives exactly one copy —
//! from one executor — for monitoring. Driver traffic no longer scales
//! with anything.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sparker_obs::trace::ScopedSpan;
use sparker_obs::Layer;

use sparker_net::codec::Payload;
use sparker_net::topology::ExecutorId;

use sparker_collectives::allreduce::ring_allreduce_by;
use sparker_collectives::segment::slice_bounds;

use crate::cluster::{LocalCluster, RecoveryPolicy};
use crate::metrics::{AggMetrics, AggStrategy};
use crate::objects::ObjectId;
use crate::ops::basic::{fold_partition, partition_assignments};
use crate::rdd::{Data, RddRef};
use crate::task::{EngineError, EngineResult, TaskFailure};

/// Result of an allreduce aggregation.
pub struct AllReduceOutput<V> {
    /// The reduced value, as seen by the driver.
    pub value: V,
    pub metrics: AggMetrics,
    /// Operation id: each executor's resident copy lives at
    /// [`executor_copy_slot`]`(op)` in its mutable object manager.
    pub op: u64,
}

/// Slot where an executor's resident copy of the allreduced value lives.
pub const fn executor_copy_slot(op: u64) -> ObjectId {
    ObjectId { op, slot: 1 << 48 }
}

/// Runs IMM + ring reduce-scatter + ring allgather, leaving the reduced
/// value resident on every executor. Same callbacks as
/// [`crate::ops::split_aggregate::split_aggregate`], except `concat_op`
/// runs on the executors (hence `Send + Sync`).
#[allow(clippy::too_many_arguments)]
pub fn allreduce_aggregate<T, U, V, S, M, Sp, R, C>(
    cluster: &LocalCluster,
    rdd: RddRef<T>,
    zero: U,
    seq_op: S,
    merge_op: M,
    split_op: Sp,
    reduce_op: R,
    concat_op: C,
    parallelism: Option<usize>,
) -> EngineResult<AllReduceOutput<V>>
where
    T: Data,
    U: Clone + Send + Sync + 'static,
    V: Payload + Clone + Send + Sync + 'static,
    S: Fn(U, &T) -> U + Send + Sync + 'static,
    M: Fn(&mut U, U) + Send + Sync + 'static,
    Sp: Fn(&U, usize, usize) -> V + Send + Sync + 'static,
    R: Fn(&mut V, V) + Send + Sync + 'static,
    C: Fn(Vec<V>) -> V + Send + Sync + 'static,
{
    let inner = cluster.inner().clone();
    let _action = inner.lock_action();
    let op = inner.next_op();
    if rdd.num_partitions() == 0 {
        return Err(EngineError::Invalid("allreduce_aggregate over zero partitions".into()));
    }
    let nexec = inner.num_executors();
    let parallelism = parallelism.unwrap_or(inner.spec().ring_parallelism);
    let mut metrics = AggMetrics::new(AggStrategy::Split);
    let ser_bytes = Arc::new(AtomicU64::new(0));
    // Op phases are Driver-layer scoped spans; AggMetrics durations are read
    // back from them, so the metrics view and the exported trace agree.
    let scope = inner.history().scope();

    // --- Stage 1: reduced-result stage (IMM, LocalFold) ------------------
    let compute_span =
        ScopedSpan::begin(scope, Layer::Driver, format!("allreduce-compute-op{op}"));
    let assignments = partition_assignments(&inner, &rdd);
    {
        let rdd = rdd.clone();
        let seq = Arc::new(seq_op);
        let merge = Arc::new(merge_op);
        let zero = zero.clone();
        let (_, attempts) = inner.run_stage(
            &format!("allreduce-imm-op{op}"),
            &assignments,
            move |idx, _attempt, ctx| {
                let acc = fold_partition(&rdd, idx, ctx, zero.clone(), seq.as_ref())?;
                let merge = merge.clone();
                ctx.objects.merge_in(
                    ObjectId { op, slot: ctx.executor.0 as u64 },
                    acc,
                    move |a, b| merge(a, b),
                );
                Ok(())
            },
            RecoveryPolicy::ResubmitStage { op },
        )?;
        metrics.task_attempts += attempts;
        metrics.stages += 1;
    }
    metrics.compute = compute_span.finish();

    // --- Stage 2: ring reduce-scatter + allgather on every executor ------
    let reduce_span =
        ScopedSpan::begin(scope, Layer::Driver, format!("allreduce-reduce-op{op}"));
    let sc_before = cluster.sc_stats();
    let ring = inner.build_ring(parallelism);
    let n = ring.size();
    let total_segments = parallelism * n;
    let all_execs: Vec<ExecutorId> = (0..nexec).map(|e| ExecutorId(e as u32)).collect();
    // Executor 0 reports the (single) driver copy.
    let reporter = ExecutorId(0);
    {
        let inner2 = inner.clone();
        let ring = ring.clone();
        let split = Arc::new(split_op);
        let reduce = Arc::new(reduce_op);
        let concat = Arc::new(concat_op);
        let zero = zero.clone();
        let ser_bytes = ser_bytes.clone();
        let (_, attempts) = inner.run_stage(
            &format!("allreduce-ring-op{op}"),
            &all_execs,
            move |_idx, attempt, ctx| {
                // Peek, don't take: a gang resubmission re-reads the same
                // input aggregator, so it must survive a failed attempt.
                let u: U = ctx
                    .objects
                    .with(ObjectId { op, slot: ctx.executor.0 as u64 }, |u: &U| u.clone())
                    .unwrap_or_else(|| zero.clone());
                // Parallel split, as in split_aggregate.
                let segments: Vec<V> = {
                    let split = &split;
                    let u = &u;
                    let mut chunks: Vec<Vec<V>> = Vec::with_capacity(parallelism);
                    std::thread::scope(|s| {
                        let handles: Vec<_> = (0..parallelism)
                            .map(|t| {
                                s.spawn(move || {
                                    let (lo, hi) = slice_bounds(total_segments, t, parallelism);
                                    (lo..hi).map(|g| split(u, g, total_segments)).collect::<Vec<V>>()
                                })
                            })
                            .collect();
                        for h in handles {
                            chunks.push(h.join().expect("split worker panicked"));
                        }
                    });
                    chunks.into_iter().flatten().collect()
                };
                drop(u);

                let comm = inner2.collective_comm(&ring, ctx.executor, op, attempt);
                let all = ring_allreduce_by(&comm, segments, &|a: &mut V, b: V| reduce(a, b))
                    .map_err(TaskFailure::from)?;
                let value = concat(all);

                if ctx.executor == reporter {
                    let frame = value.to_frame();
                    ser_bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
                    inner2.bm_send_to_driver(ctx.executor, frame)?;
                }
                // Resident copy for later stages (e.g. the next iteration's
                // gradient computation reading updated weights locally).
                ctx.objects.merge_in(executor_copy_slot(op), value, |a, b| *a = b);
                Ok(())
            },
            RecoveryPolicy::ResubmitGang { op },
        )?;
        metrics.task_attempts += attempts;
        metrics.stages += 1;
    }
    // Input aggregators were only peeked (gang retries re-read them); drop
    // them now so executors keep just their resident reduced copy.
    for e in &all_execs {
        inner.executor_ctx(*e).objects.take::<U>(ObjectId { op, slot: e.0 as u64 });
    }

    let frame = inner.driver_recv(reporter)?;
    metrics.bytes_to_driver = frame.len() as u64;
    let value = V::from_frame(frame)?;
    metrics.reduce = reduce_span.finish();
    let sc_after = cluster.sc_stats();
    metrics.ser_bytes = ser_bytes.load(Ordering::Relaxed) + (sc_after.bytes - sc_before.bytes);
    metrics.messages = (sc_after.messages - sc_before.messages) + 1;
    Ok(AllReduceOutput { value, metrics, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterSpec;
    use crate::rdds::ParallelCollection;
    use sparker_collectives::segment::SumSegment;

    fn run(executors: usize, cores: usize, parts: usize, dim: usize) -> AllReduceOutput<SumSegment> {
        let cluster = LocalCluster::new(ClusterSpec::local(executors, cores));
        let rdd: RddRef<u64> =
            Arc::new(ParallelCollection::new((1..=20u64).collect(), parts));
        allreduce_aggregate(
            &cluster,
            rdd,
            vec![0.0f64; dim],
            move |mut acc: Vec<f64>, x: &u64| {
                for a in acc.iter_mut() {
                    *a += *x as f64;
                }
                acc
            },
            |a: &mut Vec<f64>, b: Vec<f64>| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            },
            |u: &Vec<f64>, i: usize, nn: usize| {
                let (lo, hi) = slice_bounds(u.len(), i, nn);
                SumSegment(u[lo..hi].to_vec())
            },
            |a: &mut SumSegment, b: SumSegment| {
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            |segs: Vec<SumSegment>| SumSegment(segs.into_iter().flat_map(|s| s.0).collect()),
            Some(2),
        )
        .inspect(|out| {
            // keep cluster alive long enough to inspect resident copies
            for e in 0..executors {
                let copy = cluster
                    .inner()
                    .executor_ctx(ExecutorId(e as u32))
                    .objects
                    .with(executor_copy_slot(out.op), |v: &SumSegment| v.clone())
                    .expect("every executor holds a resident copy");
                assert_eq!(copy, out.value, "executor {e} copy diverges");
            }
        })
        .unwrap()
    }

    #[test]
    fn allreduce_matches_sequential_sum_and_replicates() {
        let out = run(4, 2, 8, 33);
        let want = (1..=20u64).sum::<u64>() as f64;
        assert_eq!(out.value.0, vec![want; 33]);
    }

    #[test]
    fn driver_receives_exactly_one_copy() {
        let dim = 1024;
        let out = run(3, 2, 6, dim);
        let payload = (dim * 8) as u64;
        assert!(out.metrics.bytes_to_driver >= payload);
        assert!(out.metrics.bytes_to_driver < payload + 64, "{}", out.metrics.bytes_to_driver);
    }

    #[test]
    fn single_executor_allreduce() {
        let out = run(1, 2, 3, 10);
        let want = (1..=20u64).sum::<u64>() as f64;
        assert_eq!(out.value.0, vec![want; 10]);
    }
}
