//! Basic actions: `collect`, `count`, plain `aggregate`.
//!
//! These follow Spark's standard result path: every task serializes its
//! result and the driver fetches it over the BlockManager-class transport.
//! `aggregate` (the non-tree flavour) is the degenerate baseline where all
//! partition aggregators converge on the driver in one hop — it is what
//! `treeAggregate` improves on, and what split aggregation beats further.

use std::sync::Arc;

use sparker_net::codec::{Encoder, Payload};
use sparker_net::topology::ExecutorId;

use crate::cluster::{ClusterInner, LocalCluster, RecoveryPolicy};
use crate::rdd::{Data, RddRef};
use crate::task::{partition_owner, EngineError, EngineResult, TaskFailure};

/// Assigns every partition to an executor: the RDD's preferred placement
/// (SpawnRdd-style static scheduling) when given, else the round-robin
/// owner. Out-of-range preferences are clamped by modulo, mirroring how a
/// cluster manager remaps stale locality hints.
pub(crate) fn partition_assignments<T: Data>(
    inner: &ClusterInner,
    rdd: &RddRef<T>,
) -> Vec<ExecutorId> {
    let n = inner.num_executors();
    (0..rdd.num_partitions())
        .map(|p| match rdd.preferred_executor(p) {
            Some(e) => ExecutorId(e.0 % n as u32),
            None => partition_owner(p, n),
        })
        .collect()
}

/// Returns all items of the dataset, in partition order.
pub fn collect<T: Data + Payload>(cluster: &LocalCluster, rdd: RddRef<T>) -> EngineResult<Vec<T>> {
    let inner = cluster.inner().clone();
    let _action = inner.lock_action();
    let parts = rdd.num_partitions();
    let assignments = partition_assignments(&inner, &rdd);
    let send_inner = inner.clone();
    let (_acks, _) = inner.run_stage(
        "collect",
        &assignments,
        move |idx, _attempt, ctx| {
            let items: Vec<T> = rdd.compute(idx, ctx).collect();
            let mut enc = Encoder::new();
            enc.put_usize(idx);
            items.encode_into(&mut enc);
            send_inner.bm_send_to_driver(ctx.executor, enc.finish())?;
            Ok(())
        },
        RecoveryPolicy::RetryTask,
    )?;

    let mut slots: Vec<Option<Vec<T>>> = (0..parts).map(|_| None).collect();
    for exec in &assignments {
        let frame = inner.driver_recv(*exec)?;
        let mut dec = sparker_net::codec::Decoder::new(frame);
        let idx = dec.get_usize()?;
        let items = Vec::<T>::decode_from(&mut dec)?;
        if idx >= parts || slots[idx].is_some() {
            return Err(EngineError::Invalid(format!("duplicate or bad partition {idx}")));
        }
        slots[idx] = Some(items);
    }
    Ok(slots.into_iter().flat_map(|s| s.expect("all partitions")).collect())
}

/// Counts the items of the dataset.
///
/// Used by benchmarks to force materialization of cached inputs, exactly
/// like the paper's `count` pre-load (§5.2.3).
pub fn count<T: Data>(cluster: &LocalCluster, rdd: RddRef<T>) -> EngineResult<u64> {
    let inner = cluster.inner().clone();
    let _action = inner.lock_action();
    let assignments = partition_assignments(&inner, &rdd);
    let (counts, _) = inner.run_stage(
        "count",
        &assignments,
        move |idx, _attempt, ctx| Ok(rdd.compute(idx, ctx).count() as u64),
        RecoveryPolicy::RetryTask,
    )?;
    Ok(counts.into_iter().sum())
}

/// Plain aggregation: every partition aggregator ships to the driver, which
/// merges them sequentially.
pub fn aggregate<T, U, S, C>(
    cluster: &LocalCluster,
    rdd: RddRef<T>,
    zero: U,
    seq: S,
    comb: C,
) -> EngineResult<U>
where
    T: Data,
    U: Payload + Clone + Send + Sync,
    S: Fn(U, &T) -> U + Send + Sync + 'static,
    C: Fn(U, U) -> U,
{
    let inner = cluster.inner().clone();
    let _action = inner.lock_action();
    let assignments = partition_assignments(&inner, &rdd);
    let send_inner = inner.clone();
    let task_zero = zero.clone();
    let seq = Arc::new(seq);
    let (_acks, _) = inner.run_stage(
        "aggregate",
        &assignments,
        move |idx, _attempt, ctx| {
            let mut acc = task_zero.clone();
            for item in rdd.compute(idx, ctx) {
                acc = seq(acc, &item);
            }
            let frame = acc.to_frame();
            send_inner.bm_send_to_driver(ctx.executor, frame)?;
            Ok(())
        },
        RecoveryPolicy::RetryTask,
    )?;

    let mut acc = zero;
    for exec in &assignments {
        let frame = inner.driver_recv(*exec)?;
        let u = U::from_frame(frame)?;
        acc = comb(acc, u);
    }
    Ok(acc)
}

/// Folds one partition with a sequence operator (shared by the aggregation
/// strategies).
pub(crate) fn fold_partition<T, U, F>(
    rdd: &RddRef<T>,
    idx: usize,
    ctx: &crate::rdd::TaskContext,
    zero: U,
    seq: &F,
) -> Result<U, TaskFailure>
where
    T: Data,
    U: Send,
    F: Fn(U, &T) -> U + ?Sized,
{
    let mut acc = zero;
    for item in rdd.compute(idx, ctx) {
        acc = seq(acc, &item);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterSpec;
    use crate::rdds::{GeneratedRdd, ParallelCollection};

    fn cluster() -> LocalCluster {
        LocalCluster::new(ClusterSpec::local(3, 2))
    }

    #[test]
    fn collect_preserves_partition_order() {
        let c = cluster();
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((0..100u64).collect(), 7));
        let got = collect(&c, rdd).unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn collect_empty_dataset() {
        let c = cluster();
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new(vec![], 3));
        assert_eq!(collect(&c, rdd).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn count_matches_len() {
        let c = cluster();
        let rdd: RddRef<u32> = Arc::new(GeneratedRdd::new(5, |p| vec![p as u32; p + 1]));
        // partitions of sizes 1..=5
        assert_eq!(count(&c, rdd).unwrap(), 15);
    }

    #[test]
    fn aggregate_sums_across_partitions() {
        let c = cluster();
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=10u64).collect(), 4));
        let sum = aggregate(&c, rdd, 0u64, |acc, x| acc + *x, |a, b| a + b).unwrap();
        assert_eq!(sum, 55);
    }

    #[test]
    fn aggregate_with_fault_retries() {
        let c = cluster();
        c.fault_plan().fail_once("aggregate", 0);
        let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=4u64).collect(), 2));
        let sum = aggregate(&c, rdd, 0u64, |acc, x| acc + *x, |a, b| a + b).unwrap();
        assert_eq!(sum, 10);
    }
}
