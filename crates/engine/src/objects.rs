//! The mutable object manager (paper §4, Figure 9).
//!
//! Sparker extends each executor with a *mutable object manager*: a store
//! for intermediate state **shared by tasks on the same executor** — the
//! thing plain RDDs forbid. In-Memory Merge uses it to accumulate task
//! results into a single per-executor value before serialization, and split
//! aggregation's statically scheduled stage reads the merged aggregator back
//! out of it.
//!
//! Values are type-erased (`Box<dyn Any>`) because a single executor hosts
//! objects of many aggregator types across stages. Typed access panics on a
//! type mismatch, which is always an engine bug, not user error.

use std::any::Any;
use std::collections::HashMap;

use sparker_net::sync::Mutex;

/// Key of a shared object: (operation id, slot).
///
/// Operation ids are allocated per aggregation run, so resubmitted stages
/// reuse the same key and correctly overwrite the poisoned value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId {
    pub op: u64,
    pub slot: u64,
}

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

/// Per-executor store of shared mutable objects.
#[derive(Default)]
pub struct MutableObjectManager {
    // Two-level locking: the map lock is held only to find/create the slot;
    // per-slot locks serialize merges so concurrent tasks on different
    // objects don't contend.
    slots: Mutex<HashMap<ObjectId, std::sync::Arc<Slot>>>,
}

impl MutableObjectManager {
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, id: ObjectId) -> std::sync::Arc<Slot> {
        self.slots.lock().entry(id).or_default().clone()
    }

    /// Merges `value` into the object at `id`: the first arrival installs
    /// itself, later arrivals are combined via `merge`. This is the heart of
    /// In-Memory Merge.
    pub fn merge_in<T, F>(&self, id: ObjectId, value: T, merge: F)
    where
        T: Send + 'static,
        F: FnOnce(&mut T, T),
    {
        let slot = self.slot(id);
        let mut guard = slot.lock();
        match guard.take() {
            None => *guard = Some(Box::new(value)),
            Some(existing) => {
                let mut existing = *existing
                    .downcast::<T>()
                    .expect("mutable object type mismatch: engine bug");
                merge(&mut existing, value);
                *guard = Some(Box::new(existing));
            }
        }
    }

    /// Folds directly into the shared object while holding its lock — the
    /// paper-literal IMM semantics ("each task updates its task result
    /// directly to an in-memory value which is shared among tasks", §3.2).
    ///
    /// Unlike [`MutableObjectManager::merge_in`] (fold locally, merge once),
    /// the whole fold runs under the slot lock, so concurrent tasks on one
    /// executor serialize — the contention trade-off the SharedFold ablation
    /// measures.
    pub fn fold_in<T, F>(&self, id: ObjectId, init: impl FnOnce() -> T, fold: F)
    where
        T: Send + 'static,
        F: FnOnce(T) -> T,
    {
        let slot = self.slot(id);
        let mut guard = slot.lock();
        let current = match guard.take() {
            None => init(),
            Some(existing) => *existing
                .downcast::<T>()
                .expect("mutable object type mismatch: engine bug"),
        };
        *guard = Some(Box::new(fold(current)));
    }

    /// Removes and returns the object at `id`.
    pub fn take<T: Send + 'static>(&self, id: ObjectId) -> Option<T> {
        let slot = self.slot(id);
        let mut guard = slot.lock();
        guard.take().map(|b| {
            *b.downcast::<T>()
                .expect("mutable object type mismatch: engine bug")
        })
    }

    /// Reads the object at `id` through `f` without removing it.
    pub fn with<T: Send + 'static, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let slot = self.slot(id);
        let guard = slot.lock();
        guard.as_ref().map(|b| {
            f(b.downcast_ref::<T>()
                .expect("mutable object type mismatch: engine bug"))
        })
    }

    /// Clears every object belonging to operation `op` — the cleanup step
    /// before an IMM stage resubmission (paper §3.2: "we simply clean up the
    /// failed stage which is stored in the shared in-memory value").
    pub fn clear_op(&self, op: u64) {
        let mut slots = self.slots.lock();
        slots.retain(|id, _| id.op != op);
    }

    /// Number of live objects (for tests and leak checks).
    pub fn len(&self) -> usize {
        let slots = self.slots.lock();
        slots
            .values()
            .filter(|s| s.lock().is_some())
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const ID: ObjectId = ObjectId { op: 1, slot: 0 };

    #[test]
    fn first_merge_installs_value() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, 10u64, |a, b| *a += b);
        assert_eq!(m.take::<u64>(ID), Some(10));
        assert_eq!(m.take::<u64>(ID), None);
    }

    #[test]
    fn later_merges_combine() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, 10u64, |a, b| *a += b);
        m.merge_in(ID, 5u64, |a, b| *a += b);
        m.merge_in(ID, 1u64, |a, b| *a += b);
        assert_eq!(m.take::<u64>(ID), Some(16));
    }

    #[test]
    fn with_reads_without_removing() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, vec![1u32, 2], |a, mut b| a.append(&mut b));
        let len = m.with(ID, |v: &Vec<u32>| v.len());
        assert_eq!(len, Some(2));
        assert!(m.take::<Vec<u32>>(ID).is_some());
    }

    #[test]
    fn clear_op_removes_only_that_op() {
        let m = MutableObjectManager::new();
        m.merge_in(ObjectId { op: 1, slot: 0 }, 1u64, |a, b| *a += b);
        m.merge_in(ObjectId { op: 1, slot: 1 }, 2u64, |a, b| *a += b);
        m.merge_in(ObjectId { op: 2, slot: 0 }, 3u64, |a, b| *a += b);
        m.clear_op(1);
        assert_eq!(m.take::<u64>(ObjectId { op: 1, slot: 0 }), None);
        assert_eq!(m.take::<u64>(ObjectId { op: 1, slot: 1 }), None);
        assert_eq!(m.take::<u64>(ObjectId { op: 2, slot: 0 }), Some(3));
    }

    #[test]
    fn fold_in_initializes_then_accumulates() {
        let m = MutableObjectManager::new();
        m.fold_in(ID, || 100u64, |acc| acc + 1);
        m.fold_in(ID, || -> u64 { panic!("init must not rerun") }, |acc| acc + 10);
        assert_eq!(m.take::<u64>(ID), Some(111));
    }

    #[test]
    fn concurrent_fold_ins_serialize_but_lose_nothing() {
        let m = Arc::new(MutableObjectManager::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        m.fold_in(ID, || 0u64, |acc| acc + 1);
                    }
                });
            }
        });
        assert_eq!(m.take::<u64>(ID), Some(2000));
    }

    #[test]
    fn concurrent_merges_lose_nothing() {
        let m = Arc::new(MutableObjectManager::new());
        let threads = 8;
        let per = 1000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        m.merge_in(ID, 1u64, |a, b| *a += b);
                    }
                });
            }
        });
        assert_eq!(m.take::<u64>(ID), Some(threads * per));
    }

    #[test]
    fn len_counts_live_objects() {
        let m = MutableObjectManager::new();
        assert!(m.is_empty());
        m.merge_in(ID, 1u8, |a, b| *a += b);
        assert_eq!(m.len(), 1);
        m.take::<u8>(ID);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, 1u64, |a, b| *a += b);
        m.take::<u32>(ID);
    }
}
