//! The mutable object manager (paper §4, Figure 9).
//!
//! Sparker extends each executor with a *mutable object manager*: a store
//! for intermediate state **shared by tasks on the same executor** — the
//! thing plain RDDs forbid. In-Memory Merge uses it to accumulate task
//! results into a single per-executor value before serialization, and split
//! aggregation's statically scheduled stage reads the merged aggregator back
//! out of it.
//!
//! Values are type-erased (`Box<dyn Any>`) because a single executor hosts
//! objects of many aggregator types across stages. Typed access panics on a
//! type mismatch, which is always an engine bug, not user error.
//!
//! # Striped merging
//!
//! A single per-slot lock serializes every task on an executor behind one
//! mutex — with 8+ task threads funnelling into one IMM slot, the lock is
//! the hot path. Each slot is therefore *striped*: it holds `S` independent
//! sub-values behind `S` locks, [`MutableObjectManager::merge_in`] picks a
//! stripe round-robin, and the stripes are folded together only when the
//! value is read back ([`MutableObjectManager::take`] /
//! [`MutableObjectManager::with`]) at stage end. Consolidation locks the
//! stripes in index order (so it cannot deadlock against single-stripe
//! lockers) and folds the surviving values pairwise, adjacent pairs in
//! stripe-index order — a deterministic order, so two consolidations of the
//! same stripe contents produce bitwise-identical results.
//!
//! The first `merge_in` on a slot installs a type-erased copy of its merge
//! closure; consolidation replays it across stripes. Since the engine always
//! uses one combine function per slot (the user's `combOp`), this is the
//! same function the unsharded path would have applied — only the grouping
//! changes, which is exact for the associative/commutative combiners the
//! aggregation contract already requires.
//!
//! [`MutableObjectManager::fold_in`] (the paper-literal SharedFold mode)
//! still runs entirely under stripe 0's lock: its whole point is measuring
//! the serialize-everything contention trade-off.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use sparker_net::sync::Mutex;
use sparker_obs::metrics::{self, Counter};

/// Key of a shared object: (operation id, slot).
///
/// Operation ids are allocated per aggregation run, so resubmitted stages
/// reuse the same key and correctly overwrite the poisoned value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId {
    pub op: u64,
    pub slot: u64,
}

type Value = Box<dyn Any + Send>;
/// Type-erased combine: folds the right value into the left. Installed once
/// per slot by the first `merge_in` and replayed during consolidation.
type Combiner = Box<dyn Fn(&mut Value, Value) + Send + Sync>;

struct Slot {
    stripes: Vec<Mutex<Option<Value>>>,
    /// Round-robin cursor for stripe assignment.
    next: AtomicUsize,
    combiner: OnceLock<Combiner>,
}

impl Slot {
    fn new(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            combiner: OnceLock::new(),
        }
    }

    fn any_live(&self) -> bool {
        self.stripes.iter().any(|s| s.lock().is_some())
    }

    /// Folds every live stripe into stripe 0. Locks stripes in index order;
    /// pairwise-folds adjacent survivors in rounds for a deterministic merge
    /// tree. No-op when at most one stripe is live.
    fn consolidate(&self) {
        let mut guards: Vec<_> = self.stripes.iter().map(|s| s.lock()).collect();
        let mut values: Vec<Value> = guards.iter_mut().filter_map(|g| g.take()).collect();
        if values.is_empty() {
            return;
        }
        if values.len() > 1 {
            let combine = self
                .combiner
                .get()
                .expect("striped slot holds several values but no combiner: engine bug");
            // Pairwise rounds: (0,1)(2,3)... then again, preserving order.
            while values.len() > 1 {
                let mut folded = Vec::with_capacity(values.len().div_ceil(2));
                let mut it = values.into_iter();
                while let Some(mut left) = it.next() {
                    if let Some(right) = it.next() {
                        combine(&mut left, right);
                    }
                    folded.push(left);
                }
                values = folded;
            }
            obs_consolidation();
        }
        *guards[0] = values.pop();
    }
}

/// Per-executor store of shared mutable objects.
pub struct MutableObjectManager {
    // Two-level locking: the map lock is held only to find/create the slot;
    // per-stripe locks inside each slot serialize merges so concurrent tasks
    // on different objects (or different stripes) don't contend.
    slots: Mutex<HashMap<ObjectId, Arc<Slot>>>,
    stripes: usize,
}

impl Default for MutableObjectManager {
    fn default() -> Self {
        Self::new()
    }
}

impl MutableObjectManager {
    /// A manager with one stripe per available core, capped at 8 — past
    /// that, round-robin spreading stops paying for the consolidation work.
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::with_stripes(cores.min(8))
    }

    /// A manager with exactly `stripes` stripes per slot. `1` reproduces the
    /// fully-serialized single-lock behaviour (the benchmark baseline).
    pub fn with_stripes(stripes: usize) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            stripes: stripes.max(1),
        }
    }

    fn slot(&self, id: ObjectId) -> Arc<Slot> {
        self.slots
            .lock()
            .entry(id)
            .or_insert_with(|| Arc::new(Slot::new(self.stripes)))
            .clone()
    }

    /// Merges `value` into the object at `id`: the first arrival installs
    /// itself, later arrivals are combined via `merge`. This is the heart of
    /// In-Memory Merge.
    ///
    /// Concurrent callers land on different stripes round-robin and only
    /// contend `1/S`-th of the time; the stripes fold together on read-back.
    /// `merge` must be associative and commutative (the same contract the
    /// distributed reduction already imposes on `combOp`) and every caller
    /// for a given `id` must pass an equivalent `merge` — the first one is
    /// captured for consolidation.
    pub fn merge_in<T, F>(&self, id: ObjectId, value: T, merge: F)
    where
        T: Send + 'static,
        F: Fn(&mut T, T) + Send + Sync + 'static,
    {
        let slot = self.slot(id);
        let merge = Arc::new(merge);
        {
            let erased = merge.clone();
            slot.combiner.get_or_init(move || {
                Box::new(move |acc: &mut Value, incoming: Value| {
                    let acc = acc
                        .downcast_mut::<T>()
                        .expect("mutable object type mismatch: engine bug");
                    let incoming = *incoming
                        .downcast::<T>()
                        .expect("mutable object type mismatch: engine bug");
                    erased(acc, incoming);
                })
            });
        }
        let idx = slot.next.fetch_add(1, Ordering::Relaxed) % slot.stripes.len();
        let mut guard = slot.stripes[idx].lock();
        match guard.take() {
            None => *guard = Some(Box::new(value)),
            Some(existing) => {
                let mut existing = *existing
                    .downcast::<T>()
                    .expect("mutable object type mismatch: engine bug");
                merge(&mut existing, value);
                *guard = Some(Box::new(existing));
            }
        }
        obs_merge();
    }

    /// Folds directly into the shared object while holding its lock — the
    /// paper-literal IMM semantics ("each task updates its task result
    /// directly to an in-memory value which is shared among tasks", §3.2).
    ///
    /// Unlike [`MutableObjectManager::merge_in`] (fold locally, merge once),
    /// the whole fold runs under stripe 0's lock, so concurrent tasks on one
    /// executor serialize — the contention trade-off the SharedFold ablation
    /// measures. Striping deliberately does not apply here.
    pub fn fold_in<T, F>(&self, id: ObjectId, init: impl FnOnce() -> T, fold: F)
    where
        T: Send + 'static,
        F: FnOnce(T) -> T,
    {
        let slot = self.slot(id);
        let mut guard = slot.stripes[0].lock();
        let current = match guard.take() {
            None => init(),
            Some(existing) => *existing
                .downcast::<T>()
                .expect("mutable object type mismatch: engine bug"),
        };
        *guard = Some(Box::new(fold(current)));
    }

    /// Removes and returns the object at `id`, folding its stripes first.
    pub fn take<T: Send + 'static>(&self, id: ObjectId) -> Option<T> {
        let slot = self.slot(id);
        slot.consolidate();
        let mut guard = slot.stripes[0].lock();
        guard.take().map(|b| {
            *b.downcast::<T>()
                .expect("mutable object type mismatch: engine bug")
        })
    }

    /// Reads the object at `id` through `f` without removing it, folding its
    /// stripes first.
    pub fn with<T: Send + 'static, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        let slot = self.slot(id);
        slot.consolidate();
        let guard = slot.stripes[0].lock();
        guard.as_ref().map(|b| {
            f(b.downcast_ref::<T>()
                .expect("mutable object type mismatch: engine bug"))
        })
    }

    /// Clears every object belonging to operation `op` — the cleanup step
    /// before an IMM stage resubmission (paper §3.2: "we simply clean up the
    /// failed stage which is stored in the shared in-memory value").
    pub fn clear_op(&self, op: u64) {
        let mut slots = self.slots.lock();
        slots.retain(|id, _| id.op != op);
    }

    /// Number of live objects (for tests and leak checks).
    pub fn len(&self) -> usize {
        let slots = self.slots.lock();
        slots.values().filter(|s| s.any_live()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn obs_merge() {
    static MERGES: OnceLock<Arc<Counter>> = OnceLock::new();
    MERGES.get_or_init(|| metrics::counter("engine.imm.merges")).inc();
}

fn obs_consolidation() {
    static FOLDS: OnceLock<Arc<Counter>> = OnceLock::new();
    FOLDS.get_or_init(|| metrics::counter("engine.imm.consolidations")).inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID: ObjectId = ObjectId { op: 1, slot: 0 };

    #[test]
    fn first_merge_installs_value() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, 10u64, |a, b| *a += b);
        assert_eq!(m.take::<u64>(ID), Some(10));
        assert_eq!(m.take::<u64>(ID), None);
    }

    #[test]
    fn later_merges_combine() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, 10u64, |a, b| *a += b);
        m.merge_in(ID, 5u64, |a, b| *a += b);
        m.merge_in(ID, 1u64, |a, b| *a += b);
        assert_eq!(m.take::<u64>(ID), Some(16));
    }

    #[test]
    fn with_reads_without_removing() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, vec![1u32, 2], |a, mut b| a.append(&mut b));
        let len = m.with(ID, |v: &Vec<u32>| v.len());
        assert_eq!(len, Some(2));
        assert!(m.take::<Vec<u32>>(ID).is_some());
    }

    #[test]
    fn with_consolidates_across_stripes() {
        // More merges than stripes, then a read-back without take: the read
        // must see the total, and a later take must still see it (the fold
        // is not lossy or repeated).
        let m = MutableObjectManager::with_stripes(4);
        for _ in 0..10 {
            m.merge_in(ID, 1u64, |a, b| *a += b);
        }
        assert_eq!(m.with(ID, |v: &u64| *v), Some(10));
        assert_eq!(m.take::<u64>(ID), Some(10));
    }

    #[test]
    fn clear_op_removes_only_that_op() {
        let m = MutableObjectManager::new();
        m.merge_in(ObjectId { op: 1, slot: 0 }, 1u64, |a, b| *a += b);
        m.merge_in(ObjectId { op: 1, slot: 1 }, 2u64, |a, b| *a += b);
        m.merge_in(ObjectId { op: 2, slot: 0 }, 3u64, |a, b| *a += b);
        m.clear_op(1);
        assert_eq!(m.take::<u64>(ObjectId { op: 1, slot: 0 }), None);
        assert_eq!(m.take::<u64>(ObjectId { op: 1, slot: 1 }), None);
        assert_eq!(m.take::<u64>(ObjectId { op: 2, slot: 0 }), Some(3));
    }

    #[test]
    fn fold_in_initializes_then_accumulates() {
        let m = MutableObjectManager::new();
        m.fold_in(ID, || 100u64, |acc| acc + 1);
        m.fold_in(ID, || -> u64 { panic!("init must not rerun") }, |acc| acc + 10);
        assert_eq!(m.take::<u64>(ID), Some(111));
    }

    #[test]
    fn fold_in_and_merge_in_share_the_slot() {
        // SharedFold seeds stripe 0; merge_in traffic must still fold into
        // the same logical object on read-back.
        let m = MutableObjectManager::with_stripes(4);
        m.fold_in(ID, || 100u64, |acc| acc + 1);
        for _ in 0..7 {
            m.merge_in(ID, 1u64, |a, b| *a += b);
        }
        assert_eq!(m.take::<u64>(ID), Some(108));
    }

    #[test]
    fn concurrent_fold_ins_serialize_but_lose_nothing() {
        let m = Arc::new(MutableObjectManager::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        m.fold_in(ID, || 0u64, |acc| acc + 1);
                    }
                });
            }
        });
        assert_eq!(m.take::<u64>(ID), Some(2000));
    }

    #[test]
    fn concurrent_merges_lose_nothing() {
        let m = Arc::new(MutableObjectManager::new());
        let threads = 8;
        let per = 1000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        m.merge_in(ID, 1u64, |a, b| *a += b);
                    }
                });
            }
        });
        assert_eq!(m.take::<u64>(ID), Some(threads * per));
    }

    #[test]
    fn striped_matches_single_lock_result() {
        // Same merge stream through 1 stripe and 8 stripes must agree (sum
        // is associative/commutative, so grouping cannot matter).
        for stripes in [1usize, 8] {
            let m = Arc::new(MutableObjectManager::with_stripes(stripes));
            std::thread::scope(|s| {
                for t in 0..8u64 {
                    let m = m.clone();
                    s.spawn(move || {
                        for i in 0..250u64 {
                            m.merge_in(ID, t * 1000 + i, |a, b| *a += b);
                        }
                    });
                }
            });
            let want: u64 = (0..8u64).flat_map(|t| (0..250u64).map(move |i| t * 1000 + i)).sum();
            assert_eq!(m.take::<u64>(ID), Some(want), "stripes = {stripes}");
        }
    }

    #[test]
    fn len_counts_live_objects() {
        let m = MutableObjectManager::new();
        assert!(m.is_empty());
        m.merge_in(ID, 1u8, |a, b| *a += b);
        assert_eq!(m.len(), 1);
        m.take::<u8>(ID);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let m = MutableObjectManager::new();
        m.merge_in(ID, 1u64, |a, b| *a += b);
        m.take::<u32>(ID);
    }
}
