//! The local cluster: driver + thread-backed executors.
//!
//! [`LocalCluster`] stands in for a Spark deployment. Each executor is a
//! pool of `cores_per_executor` worker threads consuming a FIFO task queue;
//! the driver (the thread calling into the engine) turns actions into
//! stages, schedules tasks onto executors, and recovers from failures. Two
//! transports connect everything, mirroring Figure 9:
//!
//! * the **BlockManager-class** transport carries what stock Spark carries —
//!   serialized task results to the driver and tree-aggregation shuffle
//!   blocks — with its control-plane RPC costs;
//! * the **scalable communicator** (the paper's JeroMQ-based addition)
//!   carries ring reduce-scatter traffic over the parallel directed ring.
//!
//! The driver occupies its own node in the network model, so result fan-in
//! from all executors serializes through the driver NIC — the physical root
//! of the paper's "reduction does not scale" observation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sparker_net::ByteBuf;
use sparker_net::sync::{channel, Mutex, Receiver, Sender};

use sparker_net::blockmanager::BlockManagerTransport;
use sparker_net::error::NetError;
use sparker_net::fault::FaultyTransport;
use sparker_net::topology::{round_robin_layout, ExecutorId, ExecutorInfo, RingTopology};
use sparker_net::transport::{MeshTransport, NetStatsSnapshot, Transport};

use sparker_collectives::comm::RingComm;

use crate::blockstore::BlockStore;
use crate::config::ClusterSpec;
use crate::history::History;
use crate::objects::MutableObjectManager;
use crate::rdd::TaskContext;
use crate::task::{EngineError, EngineResult, FaultPlan, TaskFailure};

/// Channels provisioned on the scalable-communicator mesh; PDR parallelism
/// sweeps (Figure 14) go up to 8.
pub const SC_CHANNELS: usize = 8;

type Job = Box<dyn FnOnce(&TaskContext) + Send>;

struct ExecutorHandle {
    /// Behind a mutex so [`LocalCluster::kill_executor`] can swap in a
    /// closed sender, simulating a lost executor.
    queue: Mutex<Sender<Job>>,
    ctx: TaskContext,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Failure recovery policy of a stage (see [`crate::task`]).
pub enum RecoveryPolicy {
    /// Tasks are independent: re-run just the failed task.
    RetryTask,
    /// Tasks share per-executor state under operation `op`: clear that
    /// state everywhere and resubmit the whole stage.
    ResubmitStage { op: u64 },
    /// Tasks are a gang coupled through in-flight collective traffic (ring
    /// reduce-scatter): any failure cancels the peers via the op's shared
    /// token, drains both transports once every task has stopped, bumps the
    /// epoch, and resubmits the whole stage. Unlike [`ResubmitStage`] the
    /// per-executor inputs are *not* cleared — gang stages read them
    /// non-destructively, and the poison lives only in in-flight frames.
    ResubmitGang { op: u64 },
}

/// Shared cluster state; `LocalCluster` is a cheap handle around it.
pub struct ClusterInner {
    spec: ClusterSpec,
    infos: Vec<ExecutorInfo>,
    driver: ExecutorId,
    sc: Arc<MeshTransport>,
    /// The scalable communicator as collectives see it: the raw mesh, or the
    /// mesh behind a [`FaultyTransport`] when the spec injects faults.
    sc_dyn: Arc<dyn Transport>,
    bm: Arc<BlockManagerTransport>,
    executors: Vec<ExecutorHandle>,
    fault_plan: Arc<FaultPlan>,
    op_counter: AtomicU64,
    /// Shared cancel token per collective op: set on gang failure so peers
    /// abort their fenced receives instead of waiting out the deadline.
    gang_cancel: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    /// Serializes driver-side actions: result frames from different
    /// operations share the per-executor→driver streams, so interleaved
    /// actions would steal each other's frames. Spark's driver similarly
    /// serializes result handling per job.
    action_guard: sparker_net::sync::ReentrantMutex,
    /// Per-stage event log (the engine's Spark history log).
    history: History,
}

/// A local, in-process cluster. Clone-cheap handle.
#[derive(Clone)]
pub struct LocalCluster {
    inner: Arc<ClusterInner>,
}

impl LocalCluster {
    /// Boots a cluster per `spec`: spawns all executor worker threads and
    /// wires up both transports.
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.num_executors();
        assert!(n >= 1);
        assert!(
            spec.ring_parallelism <= SC_CHANNELS,
            "ring parallelism capped at {SC_CHANNELS}"
        );
        let infos = round_robin_layout(spec.nodes, spec.executors_per_node, spec.cores_per_executor);
        // The driver lives on its own node, like a dedicated master host.
        let driver = ExecutorId(n as u32);
        let mut all = infos.clone();
        all.push(ExecutorInfo {
            id: driver,
            host: "zz-driver".to_string(),
            node: spec.nodes,
            cores: 1,
        });
        let sc = MeshTransport::new(
            &all,
            SC_CHANNELS,
            spec.profile.clone(),
            sparker_net::profile::TransportKind::ScalableComm,
        );
        let bm_wire = MeshTransport::new(
            &all,
            1,
            spec.profile.clone(),
            sparker_net::profile::TransportKind::MpiRef,
        );
        let bm = BlockManagerTransport::new(bm_wire, spec.bm_costs);
        let sc_dyn: Arc<dyn Transport> = match &spec.sc_fault {
            Some(plan) => FaultyTransport::new(sc.clone(), (**plan).clone()),
            None => sc.clone(),
        };

        let executors = infos.iter().map(spawn_executor).collect();

        LocalCluster {
            inner: Arc::new(ClusterInner {
                spec,
                infos,
                driver,
                sc,
                sc_dyn,
                bm,
                executors,
                fault_plan: Arc::new(FaultPlan::new()),
                op_counter: AtomicU64::new(1),
                gang_cancel: Mutex::new(HashMap::new()),
                action_guard: sparker_net::sync::ReentrantMutex::new(),
                history: History::new(),
            }),
        }
    }

    pub(crate) fn inner(&self) -> &Arc<ClusterInner> {
        &self.inner
    }

    /// The cluster's configuration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.inner.spec
    }

    /// Number of executors.
    pub fn num_executors(&self) -> usize {
        self.inner.infos.len()
    }

    /// Deterministic fault injection hooks (tests).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.inner.fault_plan
    }

    /// Traffic counters of the scalable communicator.
    pub fn sc_stats(&self) -> NetStatsSnapshot {
        self.inner.sc.stats()
    }

    /// Direct access to an executor's mutable object manager (diagnostics
    /// and tests; tasks reach it through their [`TaskContext`]).
    pub fn executor_objects(&self, id: ExecutorId) -> Arc<MutableObjectManager> {
        self.inner.executor_ctx(id).objects.clone()
    }

    /// The cluster's stage history log (the paper's analysis substrate).
    pub fn history(&self) -> &History {
        &self.inner.history
    }

    /// Simulates losing an executor: its task queue is closed, so queued
    /// jobs drain, worker threads exit, and every later submission to it
    /// fails through the normal recovery path (never a driver panic).
    pub fn kill_executor(&self, id: ExecutorId) {
        let (closed, _) = channel();
        *self.inner.executors[id.index()].queue.lock() = closed;
    }
}

fn spawn_executor(info: &ExecutorInfo) -> ExecutorHandle {
    let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
    let ctx = TaskContext {
        executor: info.id,
        blocks: Arc::new(BlockStore::new()),
        objects: Arc::new(MutableObjectManager::new()),
    };
    let workers = (0..info.cores)
        .map(|w| {
            let rx = rx.clone();
            let ctx = ctx.clone();
            std::thread::Builder::new()
                .name(format!("{}-core{}", info.id, w))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        crate::rdd::with_task_context(&ctx, || job(&ctx));
                    }
                })
                .expect("spawn executor worker")
        })
        .collect();
    ExecutorHandle { queue: Mutex::new(tx), ctx, workers }
}

impl Drop for ClusterInner {
    fn drop(&mut self) {
        // Close queues, then join workers so no threads outlive the cluster.
        for h in &mut self.executors {
            let (closed, _) = channel();
            *h.queue.lock() = closed; // drop the live sender
        }
        // Task closures may hold cluster refs, so the last `Arc<ClusterInner>`
        // can drop on an executor worker itself; joining that thread from its
        // own drop would self-deadlock (EDEADLK). Detach it instead — with
        // its queue closed it exits as soon as this drop returns.
        let me = std::thread::current().id();
        for h in &mut self.executors {
            for w in h.workers.drain(..) {
                if w.thread().id() != me {
                    let _ = w.join();
                }
            }
        }
    }
}

impl ClusterInner {
    /// Allocates a fresh operation id (namespaces shared objects).
    pub fn next_op(&self) -> u64 {
        self.op_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Takes the driver action lock. Every op (collect, aggregate, ...)
    /// holds this across its stages and result fetches; reentrant so ops
    /// can compose.
    pub fn lock_action(&self) -> sparker_net::sync::ReentrantMutexGuard<'_> {
        self.action_guard.lock()
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn num_executors(&self) -> usize {
        self.infos.len()
    }

    pub fn driver_id(&self) -> ExecutorId {
        self.driver
    }

    pub fn executor_infos(&self) -> &[ExecutorInfo] {
        &self.infos
    }

    /// The executor-local context (driver-side access for cleanup/tests).
    pub fn executor_ctx(&self, id: ExecutorId) -> &TaskContext {
        &self.executors[id.index()].ctx
    }

    /// The cluster's stage history (ops record op-phase spans under its
    /// trace scope so driver phases and stages share one timeline).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Builds the PDR ring over the executors with `parallelism` channels.
    pub fn build_ring(&self, parallelism: usize) -> Arc<RingTopology> {
        assert!((1..=SC_CHANNELS).contains(&parallelism));
        Arc::new(RingTopology::new(
            self.infos.clone(),
            self.spec.ring_order,
            parallelism,
        ))
    }

    /// Binds the scalable communicator to `executor`'s rank in `ring`
    /// (epoch `(0, 0)`, no cancellation — diagnostics and tests).
    pub fn ring_comm(&self, ring: &Arc<RingTopology>, executor: ExecutorId) -> RingComm {
        let rank = ring.rank_of(executor);
        RingComm::new(self.sc_dyn.clone(), ring.clone(), rank)
    }

    /// Binds the scalable communicator for one gang task of collective
    /// `(op, attempt)`: frames are fenced to that epoch, receives abort on
    /// the op's shared cancel token, and every receive is bounded by the
    /// spec's collective deadline.
    pub fn collective_comm(
        &self,
        ring: &Arc<RingTopology>,
        executor: ExecutorId,
        op: u64,
        attempt: u32,
    ) -> RingComm {
        let rank = ring.rank_of(executor);
        RingComm::new(self.sc_dyn.clone(), ring.clone(), rank)
            .with_epoch(op, attempt)
            .with_cancel(self.gang_token(op))
            .with_recv_deadline(self.spec.collective_recv_timeout)
    }

    /// The shared cancel token of collective `op` (created on first use).
    fn gang_token(&self, op: u64) -> Arc<AtomicBool> {
        self.gang_cancel
            .lock()
            .entry(op)
            .or_insert_with(|| Arc::new(AtomicBool::new(false)))
            .clone()
    }

    /// Sends a serialized payload from an executor to another executor over
    /// the BlockManager-class path, charging the modeled serializer.
    pub fn bm_send(
        &self,
        from: ExecutorId,
        to: ExecutorId,
        frame: ByteBuf,
    ) -> Result<(), TaskFailure> {
        self.spec.cost.charge_ser(frame.len());
        self.bm.send(from, to, 0, frame).map_err(TaskFailure::from)
    }

    /// Sends a serialized task result to the driver (BlockManager path).
    pub fn bm_send_to_driver(&self, from: ExecutorId, frame: ByteBuf) -> Result<(), TaskFailure> {
        self.bm_send(from, self.driver, frame)
    }

    /// Charges the driver's modeled serializer for `bytes` (broadcast seed).
    pub fn charge_driver_ser(&self, bytes: usize) {
        self.spec.cost.charge_ser(bytes);
    }

    /// Ships an already-serialized frame from the driver to an executor
    /// without re-charging the serializer (broadcast replicates one encoded
    /// copy; the wire and NIC shaping still apply per copy).
    pub fn bm_send_raw_from_driver(&self, to: ExecutorId, frame: ByteBuf) -> EngineResult<()> {
        self.bm.send(self.driver, to, 0, frame).map_err(EngineError::from)
    }

    /// Executor-side receive on the BlockManager path, charging the modeled
    /// deserializer.
    pub fn bm_recv(&self, at: ExecutorId, from: ExecutorId) -> Result<ByteBuf, TaskFailure> {
        let f = self.bm.recv(at, from, 0).map_err(TaskFailure::from)?;
        self.spec.cost.charge_deser(f.len());
        Ok(f)
    }

    /// Driver-side receive of a task result frame sent by `from`.
    pub fn driver_recv(&self, from: ExecutorId) -> EngineResult<ByteBuf> {
        let f = self
            .bm
            .recv_timeout(self.driver, from, 0, self.spec.stage_timeout)
            .map_err(EngineError::from)?;
        self.spec.cost.charge_deser(f.len());
        Ok(f)
    }

    /// Runs one stage: `assignments[i]` is the executor of task `i`, `make`
    /// produces each task's body from `(task index, attempt, context)`.
    /// Returns per-task results in task order.
    ///
    /// `make` may be invoked multiple times per task (retries /
    /// resubmissions); the attempt number is what fault injection keys on,
    /// and what gang tasks stamp on their collective frames.
    pub fn run_stage<R, F>(
        self: &Arc<Self>,
        label: &str,
        assignments: &[ExecutorId],
        make: F,
        policy: RecoveryPolicy,
    ) -> EngineResult<(Vec<R>, u32)>
    where
        R: Send + 'static,
        F: Fn(usize, u32, &TaskContext) -> Result<R, TaskFailure> + Send + Sync + 'static,
    {
        let n = assignments.len();
        if n == 0 {
            return Ok((Vec::new(), 0));
        }
        // The stage span doubles as the stage stopwatch and the History
        // record: finishing it writes the Stage-layer span the history view
        // (and the Fig 2 exporters) derive from. An error return drops it
        // unfinished — failed stages are not logged, as before.
        let stage_span = sparker_obs::trace::ScopedSpan::begin(
            self.history.scope(),
            sparker_obs::Layer::Stage,
            label,
        );
        let stage_span_id = stage_span.id();
        let make = Arc::new(make);
        let (tx, rx) = channel::<(usize, Result<R, TaskFailure>)>();

        let fail_tx = tx.clone();
        let submit = |idx: usize, attempt: u32| {
            let make = make.clone();
            let tx = tx.clone();
            let label = label.to_string();
            let armed = self.fault_plan.is_armed();
            // Jobs must never capture the cluster itself: an executor thread
            // dropping the last `Arc<ClusterInner>` would make `drop` join
            // the very thread it is running on (EDEADLK). The fault plan is
            // the only cluster state a task consults, so capture just that.
            let fault_plan = self.fault_plan.clone();
            let job: Job = Box::new(move |ctx| {
                // Gated per-attempt task span, parented to the driver's
                // stage span across the executor-thread boundary.
                let mut task_span = sparker_obs::trace::span_with_parent(
                    sparker_obs::Layer::Task,
                    label.as_str(),
                    stage_span_id,
                );
                task_span
                    .arg("task", idx as u64)
                    .arg("attempt", attempt as u64)
                    .arg("executor", ctx.executor.0 as u64);
                let result = if armed && fault_plan.should_fail(&label, idx, attempt) {
                    Err(TaskFailure { reason: format!("injected fault (attempt {attempt})") })
                } else {
                    make(idx, attempt, ctx)
                };
                drop(task_span);
                let _ = tx.send((idx, result));
            });
            let executor = assignments[idx];
            // A dead executor (closed queue) is a lost task, not a driver
            // panic: report it through the result channel so the stage's
            // recovery policy decides what happens next.
            if self.executors[executor.index()].queue.lock().send(job).is_err() {
                let _ = fail_tx.send((
                    idx,
                    Err(TaskFailure { reason: format!("executor {executor} is dead (queue closed)") }),
                ));
            }
        };

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut task_attempts: Vec<u32> = vec![0; n];
        let mut total_attempts: u32 = n as u32;
        let mut stage_attempt: u32 = 0;

        for idx in 0..n {
            submit(idx, 0);
        }
        let mut inflight = n;
        let mut completed = 0usize;

        while completed < n {
            let (idx, res) = rx
                .recv_timeout(self.spec.stage_timeout)
                .map_err(|_| EngineError::Net(NetError::Timeout))?;
            inflight -= 1;
            match res {
                Ok(r) => {
                    if results[idx].is_none() {
                        results[idx] = Some(r);
                        completed += 1;
                    }
                }
                Err(fail) => match &policy {
                    RecoveryPolicy::RetryTask => {
                        task_attempts[idx] += 1;
                        if task_attempts[idx] >= self.spec.max_task_attempts {
                            return Err(EngineError::TaskFailed {
                                stage: label.to_string(),
                                task: idx,
                                attempts: task_attempts[idx],
                                reason: fail.reason,
                            });
                        }
                        total_attempts += 1;
                        inflight += 1;
                        submit(idx, task_attempts[idx]);
                    }
                    RecoveryPolicy::ResubmitStage { op } => {
                        stage_attempt += 1;
                        if stage_attempt >= self.spec.max_task_attempts {
                            return Err(EngineError::TaskFailed {
                                stage: label.to_string(),
                                task: idx,
                                attempts: stage_attempt,
                                reason: fail.reason,
                            });
                        }
                        // Drain in-flight tasks of the poisoned attempt so
                        // no stale merge lands after cleanup.
                        while inflight > 0 {
                            let _ = rx
                                .recv_timeout(self.spec.stage_timeout)
                                .map_err(|_| EngineError::Net(NetError::Timeout))?;
                            inflight -= 1;
                        }
                        // Paper §3.2: clean up the failed stage's shared
                        // in-memory value, then resubmit the stage.
                        for h in &self.executors {
                            h.ctx.objects.clear_op(*op);
                        }
                        for r in results.iter_mut() {
                            *r = None;
                        }
                        completed = 0;
                        total_attempts += n as u32;
                        for idx in 0..n {
                            submit(idx, stage_attempt);
                        }
                        inflight = n;
                    }
                    RecoveryPolicy::ResubmitGang { op } => {
                        stage_attempt += 1;
                        // Cancel the gang: peers blocked in fenced receives
                        // abort within one poll quantum instead of waiting
                        // out their deadline.
                        self.gang_token(*op).store(true, Ordering::Relaxed);
                        while inflight > 0 {
                            let _ = rx
                                .recv_timeout(self.spec.stage_timeout)
                                .map_err(|_| EngineError::Net(NetError::Timeout))?;
                            inflight -= 1;
                        }
                        // Every gang task has now returned, so anything
                        // still queued on either transport belongs to the
                        // failed attempt: discard it all. (The epoch fence
                        // would reject the sc frames anyway; gather frames
                        // on the bm path carry no epoch, so the drain is
                        // their only protection.)
                        self.sc_dyn.drain_all();
                        self.bm.drain_all();
                        if stage_attempt >= self.spec.max_collective_attempts {
                            self.gang_cancel.lock().remove(op);
                            return Err(EngineError::TaskFailed {
                                stage: label.to_string(),
                                task: idx,
                                attempts: stage_attempt,
                                reason: fail.reason,
                            });
                        }
                        // Fresh token: the next attempt starts uncancelled.
                        // Unlike ResubmitStage there is no clear_op — gang
                        // stages read their inputs non-destructively, so
                        // executor state is intact for the retry (and for
                        // the tree fallback if the gang exhausts).
                        self.gang_cancel
                            .lock()
                            .insert(*op, Arc::new(AtomicBool::new(false)));
                        for r in results.iter_mut() {
                            *r = None;
                        }
                        completed = 0;
                        total_attempts += n as u32;
                        for idx in 0..n {
                            submit(idx, stage_attempt);
                        }
                        inflight = n;
                    }
                },
            }
        }

        if let RecoveryPolicy::ResubmitGang { op } = &policy {
            self.gang_cancel.lock().remove(op);
        }
        let out = results.into_iter().map(|r| r.expect("completed")).collect();
        let mut stage_span = stage_span;
        stage_span
            .arg("tasks", n as u64)
            .arg("attempts", total_attempts as u64)
            .arg("job", self.history.current_job());
        stage_span.finish();
        Ok((out, total_attempts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::partition_owner;

    fn tiny() -> LocalCluster {
        LocalCluster::new(ClusterSpec::local(3, 2))
    }

    #[test]
    fn stage_runs_every_task_on_its_executor() {
        let cluster = tiny();
        let assignments: Vec<ExecutorId> = (0..6).map(|p| partition_owner(p, 3)).collect();
        let (got, attempts) = cluster
            .inner()
            .run_stage(
                "where-am-i",
                &assignments,
                |idx, _attempt, ctx| Ok((idx, ctx.executor)),
                RecoveryPolicy::RetryTask,
            )
            .unwrap();
        assert_eq!(attempts, 6);
        for (idx, (i, exec)) in got.iter().enumerate() {
            assert_eq!(*i, idx);
            assert_eq!(*exec, partition_owner(idx, 3));
        }
    }

    #[test]
    fn retry_task_recovers_from_single_fault() {
        let cluster = tiny();
        cluster.fault_plan().fail_once("flaky", 1);
        let assignments = vec![ExecutorId(0), ExecutorId(1), ExecutorId(2)];
        let (got, attempts) = cluster
            .inner()
            .run_stage(
                "flaky",
                &assignments,
                |idx, _attempt, _ctx| Ok(idx * 10),
                RecoveryPolicy::RetryTask,
            )
            .unwrap();
        assert_eq!(got, vec![0, 10, 20]);
        assert_eq!(attempts, 4, "three tasks + one retry");
    }

    #[test]
    fn retry_task_gives_up_after_max_attempts() {
        let cluster = tiny();
        for attempt in 0..10 {
            cluster.fault_plan().fail_attempt("doomed", 0, attempt);
        }
        let err = cluster
            .inner()
            .run_stage(
                "doomed",
                &[ExecutorId(0)],
                |_idx, _attempt, _ctx| Ok(()),
                RecoveryPolicy::RetryTask,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::TaskFailed { attempts: 4, .. }), "{err}");
    }

    #[test]
    fn resubmit_stage_clears_shared_state_and_reruns_all() {
        use crate::objects::ObjectId;
        let cluster = tiny();
        let op = cluster.inner().next_op();
        cluster.fault_plan().fail_once("imm-stage", 2);
        let assignments = vec![ExecutorId(0), ExecutorId(1), ExecutorId(2)];
        let (_, attempts) = cluster
            .inner()
            .run_stage(
                "imm-stage",
                &assignments,
                move |idx, _attempt, ctx| {
                    ctx.objects
                        .merge_in(ObjectId { op, slot: 0 }, 1u64, |a, b| *a += b);
                    Ok(idx)
                },
                RecoveryPolicy::ResubmitStage { op },
            )
            .unwrap();
        // First submission: tasks 0,1 merged then task 2 failed -> cleanup +
        // full resubmission. Each executor's object must hold exactly one
        // merge (from the clean rerun).
        assert_eq!(attempts, 6, "3 first attempt + 3 resubmitted");
        for e in 0..3 {
            let v = cluster
                .inner()
                .executor_ctx(ExecutorId(e))
                .objects
                .take::<u64>(ObjectId { op, slot: 0 });
            assert_eq!(v, Some(1), "executor {e} state not cleanly rebuilt");
        }
    }

    #[test]
    fn bm_roundtrip_executor_to_driver() {
        let cluster = tiny();
        let inner = cluster.inner().clone();
        let (results, _) = inner
            .run_stage(
                "report",
                &[ExecutorId(1)],
                {
                    let inner = inner.clone();
                    move |_idx, _attempt, ctx| {
                        inner.bm_send_to_driver(ctx.executor, ByteBuf::from_static(b"result"))?;
                        Ok(())
                    }
                },
                RecoveryPolicy::RetryTask,
            )
            .unwrap();
        assert_eq!(results.len(), 1);
        let frame = inner.driver_recv(ExecutorId(1)).unwrap();
        assert_eq!(&frame[..], b"result");
    }

    #[test]
    fn ring_comm_reaches_all_executors() {
        let cluster = tiny();
        let inner = cluster.inner().clone();
        let ring = inner.build_ring(2);
        let inner2 = inner.clone();
        let ring2 = ring.clone();
        let (ranks, _) = inner
            .run_stage(
                "ring-hello",
                &[ExecutorId(0), ExecutorId(1), ExecutorId(2)],
                move |_idx, _attempt, ctx| {
                    let comm = inner2.ring_comm(&ring2, ctx.executor);
                    comm.send_next(0, ByteBuf::from(vec![comm.rank() as u8]))
                        .map_err(TaskFailure::from)?;
                    let got = comm.recv_prev(0).map_err(TaskFailure::from)?;
                    Ok((comm.rank(), got[0] as usize))
                },
                RecoveryPolicy::RetryTask,
            )
            .unwrap();
        for (rank, prev) in ranks {
            assert_eq!(prev, (rank + 2) % 3);
        }
    }

    #[test]
    fn cluster_shuts_down_cleanly() {
        let cluster = tiny();
        drop(cluster); // must not hang or leak panics
    }

    #[test]
    fn dead_executor_fails_tasks_instead_of_panicking_the_driver() {
        let cluster = tiny();
        cluster.kill_executor(ExecutorId(1));
        let err = cluster
            .inner()
            .run_stage(
                "lost-exec",
                &[ExecutorId(0), ExecutorId(1), ExecutorId(2)],
                |idx, _attempt, _ctx| Ok(idx),
                RecoveryPolicy::RetryTask,
            )
            .unwrap_err();
        match err {
            EngineError::TaskFailed { stage, task, reason, .. } => {
                assert_eq!(stage, "lost-exec");
                assert_eq!(task, 1);
                assert!(reason.contains("dead"), "{reason}");
            }
            other => panic!("expected TaskFailed, got {other}"),
        }
    }

    #[test]
    fn resubmit_gang_reruns_all_without_clearing_state() {
        use crate::objects::ObjectId;
        let cluster = tiny();
        let op = cluster.inner().next_op();
        cluster.fault_plan().fail_once("gang-stage", 1);
        let assignments = vec![ExecutorId(0), ExecutorId(1), ExecutorId(2)];
        let (_, attempts) = cluster
            .inner()
            .run_stage(
                "gang-stage",
                &assignments,
                move |_idx, _attempt, ctx| {
                    ctx.objects
                        .merge_in(ObjectId { op, slot: 0 }, 1u64, |a, b| *a += b);
                    Ok(())
                },
                RecoveryPolicy::ResubmitGang { op },
            )
            .unwrap();
        assert_eq!(attempts, 6, "3 first attempt + 3 gang resubmits");
        // Gang resubmission must NOT clear op state: executors 0 and 2 ran
        // twice (two merges), executor 1's first attempt failed before its
        // merge so it holds one.
        for (e, want) in [(0u32, 2u64), (1, 1), (2, 2)] {
            let v = cluster
                .inner()
                .executor_ctx(ExecutorId(e))
                .objects
                .take::<u64>(ObjectId { op, slot: 0 });
            assert_eq!(v, Some(want), "executor {e}");
        }
    }

    #[test]
    fn resubmit_gang_gives_up_after_collective_budget() {
        let spec = ClusterSpec::local(3, 2).with_max_collective_attempts(2);
        let cluster = LocalCluster::new(spec);
        let op = cluster.inner().next_op();
        for attempt in 0..10 {
            cluster.fault_plan().fail_attempt("gang-doomed", 0, attempt);
        }
        let err = cluster
            .inner()
            .run_stage(
                "gang-doomed",
                &[ExecutorId(0), ExecutorId(1), ExecutorId(2)],
                |_idx, _attempt, _ctx| Ok(()),
                RecoveryPolicy::ResubmitGang { op },
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::TaskFailed { attempts: 2, .. }), "{err}");
    }

    #[test]
    fn gang_failure_cancels_a_peer_blocked_in_recv() {
        use std::time::{Duration, Instant};
        // Executor 0's task waits on a neighbour that dies before sending:
        // the gang cancel token must abort the wait well before the 10s
        // receive deadline.
        let spec = ClusterSpec::local(3, 2)
            .with_collective_recv_timeout(Duration::from_secs(10))
            .with_max_collective_attempts(1);
        let cluster = LocalCluster::new(spec);
        let inner = cluster.inner().clone();
        let op = inner.next_op();
        let ring = inner.build_ring(1);
        let inner2 = inner.clone();
        let start = Instant::now();
        let err = inner
            .run_stage(
                "gang-cancel",
                &[ExecutorId(0), ExecutorId(1), ExecutorId(2)],
                move |idx, attempt, ctx| {
                    if idx == 1 {
                        // Fail fast without sending anything.
                        return Err(TaskFailure { reason: "peer died".into() });
                    }
                    let comm = inner2.collective_comm(&ring, ctx.executor, op, attempt);
                    comm.recv_prev(0).map_err(TaskFailure::from)?;
                    Ok(())
                },
                RecoveryPolicy::ResubmitGang { op },
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::TaskFailed { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cancel token did not abort blocked peers: {:?}",
            start.elapsed()
        );
    }
}
