//! The paper's Figure 7 aggregator — `Agg { sum1, sum2 }` — running through
//! split aggregation with **derived** split/concat callbacks (the paper's
//! §6 future-work idea, implemented as `CompositeLayout`).
//!
//! ```bash
//! cargo run --release --example composite_aggregator
//! ```

use sparker::collectives::composite::{CompositeAgg, CompositeLayout};
use sparker::collectives::segment::SumSegment;
use sparker::prelude::*;

fn main() {
    let cluster = LocalCluster::local(4, 2);
    let dim = 1000;
    // Figure 7's Agg: two arrays plus (here) a loss scalar and a count.
    let layout = CompositeLayout::new(vec![dim, dim], 2);
    println!(
        "aggregator: 2 x {dim} f64 fields + 2 scalars = {} logical elements",
        layout.total_len()
    );
    println!("splitOp/concatOp: derived from the layout — no hand-written slicing\n");

    let data = cluster
        .generate(8, |p| vec![(p + 1) as f64; 64])
        .cache();
    data.count().expect("preload");

    let split_layout = layout.clone();
    let (flat, metrics) = data
        .split_aggregate(
            CompositeAgg::zeros(&[dim, dim], 2),
            // seqOp: Fig 7's add — sum1 += x, sum2 += 2x, plus loss/count.
            move |mut agg: CompositeAgg, x: &f64| {
                for a in agg.field_mut(0) {
                    *a += x;
                }
                for a in agg.field_mut(1) {
                    *a += 2.0 * x;
                }
                *agg.scalar_mut(0) += x * x;
                *agg.scalar_mut(1) += 1.0;
                agg
            },
            |a: &mut CompositeAgg, b: CompositeAgg| a.merge(b),
            move |u: &CompositeAgg, i, n| split_layout.split(u, i, n),
            |a: &mut SumSegment, b: SumSegment| {
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            |segs: Vec<SumSegment>| SumSegment(segs.into_iter().flat_map(|s| s.0).collect()),
            SplitAggOpts::default(),
        )
        .expect("split aggregate");

    let agg = layout.concat(vec![flat]).expect("reassemble");
    println!("sum1[0]   = {}", agg.field(0)[0]);
    println!("sum2[0]   = {}", agg.field(1)[0]);
    println!("loss      = {}", agg.scalar(0));
    println!("count     = {}", agg.scalar(1));
    println!(
        "\nring moved {} KiB in {} messages; driver received {} KiB",
        metrics.ser_bytes / 1024,
        metrics.messages,
        metrics.bytes_to_driver / 1024
    );

    // Cross-check against a driver-side sequential fold.
    let expected_sum: f64 = (0..8).map(|p| (p + 1) as f64 * 64.0).sum();
    assert_eq!(agg.field(0)[0], expected_sum);
    assert_eq!(agg.field(1)[0], 2.0 * expected_sum);
    assert_eq!(agg.scalar(1), 8.0 * 64.0);
    println!("\nmatches the sequential fold — derived splitting is semantics-preserving.");
}
