//! LDA topic modelling on a synthetic corpus (the paper's LDA-E/LDA-N
//! stand-in), trained with split aggregation, printing top words per topic.
//!
//! ```bash
//! cargo run --release --example lda_topics
//! ```
//!
//! LDA is the paper's flagship workload because its per-iteration
//! aggregator is a K x V matrix of doubles — at nytimes scale with K = 100
//! that is ~78 MiB reduced every iteration.

use sparker::data::profiles::enron;
use sparker::data::synth::Document;
use sparker::ml::lda::{train, LdaConfig};
use sparker::prelude::*;

fn main() {
    // enron shrunk: ~2000 docs, 1400-word vocabulary, 8 topics.
    let profile = enron().scaled(0.05).feature_scaled(0.05);
    let vocab = profile.features();
    let docs = profile.samples();
    let topics = 8;
    println!(
        "corpus: {} ({} docs, vocab {}, ~{} words/doc), K={topics}",
        profile.name, docs, vocab, profile.nnz_per_sample
    );
    println!(
        "per-iteration sufficient-statistics aggregator: {:.1} MiB",
        (topics * vocab + topics) as f64 * 8.0 / (1024.0 * 1024.0)
    );

    let cluster = LocalCluster::local(4, 2);
    let parts = 8;
    let gen = profile.corpus_gen(topics);
    let g = gen.clone();
    let data = cluster
        .generate(parts, move |p| g.partition(p, parts, docs))
        .cache();
    data.count().expect("preload");

    let cfg = LdaConfig {
        iterations: 8,
        ..LdaConfig::new(topics, vocab)
    }
    .with_mode(AggregationMode::split());
    let (model, records) = train(&data, cfg).expect("train");

    println!("\nper-iteration negative log-likelihood per word:");
    for r in &records {
        println!("  iter {:>2}: {:.4}", r.iteration, r.neg_loglik_per_word);
    }

    println!("\ntop words per topic (synthetic word ids):");
    for t in 0..topics {
        let words = model.top_words(t, 6);
        println!("  topic {t}: {words:?}");
    }

    // The generator builds topics on rotated vocabulary slices; a trained
    // model's topic heads should scatter across slices.
    let mut slices = std::collections::HashSet::new();
    for t in 0..topics {
        slices.insert(model.top_words(t, 1)[0] as usize / (vocab / topics));
    }
    println!("\ndistinct vocabulary slices covered by topic heads: {}/{topics}", slices.len());

    // Infer the mixture of a fresh document.
    let doc: Document = gen.document(docs + 1);
    let theta = model.infer(&doc, 5, 0.1);
    let dominant = theta
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "fresh document: dominant topic {} with weight {:.2}",
        dominant.0, dominant.1
    );
}
