//! The collectives layer directly: ring reduce-scatter over a shaped
//! parallel directed ring, showing what channel parallelism and topology
//! awareness buy (the paper's Figure 14 at laptop scale).
//!
//! ```bash
//! cargo run --release --example reduce_scatter
//! ```

use std::sync::Arc;
use std::time::Instant;

use sparker::collectives::ring::ring_reduce_scatter;
use sparker::collectives::segment::U64SumSegment;
use sparker::collectives::testing::{run_on_ring, RingClusterSpec};
use sparker::net::topology::{round_robin_layout, RingTopology};
use sparker::net::transport::MeshTransport;
use sparker::prelude::*;

fn measure(order: RingOrder, parallelism: usize, elems: usize) -> f64 {
    // 4 nodes x 2 executors on a 16x-scaled BIC wire.
    let profile = NetProfile::bic().scaled(16.0);
    let execs = round_robin_layout(4, 2, 1);
    let net = MeshTransport::new(&execs, 8, profile, TransportKind::ScalableComm);
    let ring = Arc::new(RingTopology::new(execs, order, parallelism));
    let n = ring.size();
    let start = Instant::now();
    run_on_ring(net, ring, &|comm| {
        let segs: Vec<U64SumSegment> = (0..parallelism * n)
            .map(|_| U64SumSegment(vec![1; elems / (parallelism * n)]))
            .collect();
        ring_reduce_scatter(&comm, segs).unwrap()
    });
    start.elapsed().as_secs_f64()
}

fn main() {
    let _ = RingClusterSpec::unshaped(1, 1, 1); // (re-exported harness, see tests)
    // 16 MB aggregate (paper-equivalent 256 MB under the 16x scale).
    let elems = 2 * 1024 * 1024;
    println!("ring reduce-scatter of a 16 MiB aggregate over 8 executors / 4 nodes");
    println!("(paper-equivalent: 256 MB over the BIC cluster — Figure 14)\n");

    println!("{:<14} {:>12} {:>12}", "parallelism", "aware", "id-order");
    let mut p1 = 0.0;
    let mut p4 = 0.0;
    for p in [1usize, 2, 4] {
        let aware = measure(RingOrder::TopologyAware, p, elems);
        let unaware = measure(RingOrder::ById, p, elems);
        if p == 1 {
            p1 = aware;
        }
        if p == 4 {
            p4 = aware;
        }
        println!("{:<14} {:>11.0}ms {:>11.0}ms", p, aware * 1e3, unaware * 1e3);
    }
    println!("\nparallelism speedup P1 -> P4: {:.2}x (paper: 3.06x for P1 -> P8)", p1 / p4);
}
