//! Fault tolerance live: the paper's §3.2 recovery semantics on a real run.
//!
//! ```bash
//! cargo run --release --example fault_tolerance
//! ```
//!
//! In-Memory Merge breaks RDD task independence: tasks on one executor
//! share a mutable aggregator, so a failed task cannot simply be re-run —
//! the shared value may already contain its siblings' merges. The paper's
//! answer: clean up the executor state and resubmit the whole stage. This
//! example injects faults into every stage kind of a split aggregation and
//! shows both recovery paths producing the exact sequential answer.

use sparker::prelude::*;

fn run_with_fault(stage: Option<(&str, usize)>) -> (f64, u32) {
    let cluster = LocalCluster::local(3, 2);
    if let Some((label, task)) = stage {
        cluster.fault_plan().fail_once(label, task);
    }
    let data = cluster.generate(6, |p| vec![(p + 1) as u64; 10]).cache();
    data.count().expect("preload");
    let (sum, metrics) = data
        .split_aggregate(
            0.0f64,
            |acc, x| acc + *x as f64,
            |a, b| *a += b,
            |u, i, _n| if i == 0 { *u } else { 0.0 },
            |a, b| *a += b,
            |segs| segs.into_iter().sum::<f64>(),
            SplitAggOpts::default(),
        )
        .expect("split aggregate");
    (sum, metrics.task_attempts)
}

fn main() {
    let expected = 10.0 * (1..=6).sum::<u64>() as f64;
    println!("dataset: 6 partitions, exact sum = {expected}\n");

    let (sum, attempts) = run_with_fault(None);
    assert_eq!(sum, expected);
    println!("clean run:                  sum {sum}, {attempts} task attempts");

    // Fault in the IMM (reduced-result) stage: tasks share per-executor
    // state, so the driver clears it and resubmits the whole stage.
    let (sum, attempts) = run_with_fault(Some(("split-imm-op1", 4)));
    assert_eq!(sum, expected, "stage resubmission must not double-count");
    println!("IMM-stage fault:            sum {sum}, {attempts} attempts (whole stage resubmitted)");

    // Fault in the ring stage: ring tasks hold live channels to their
    // neighbours, so one failure cancels and resubmits the whole gang with
    // a bumped epoch (stale frames from the dead attempt are fenced off).
    let (sum, attempts) = run_with_fault(Some(("split-ring-op1", 1)));
    assert_eq!(sum, expected);
    println!("ring-stage fault:           sum {sum}, {attempts} attempts (whole gang resubmitted)");

    println!(
        "\nthe paper's argument (§3.2): ML iterations are short, so resubmitting a whole\n\
         stage on rare failures costs little next to what IMM saves every iteration."
    );
}
