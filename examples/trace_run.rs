//! Observability quickstart: trace one training run end to end.
//!
//! ```bash
//! cargo run --release --example trace_run
//! ```
//!
//! Enables fine-grained tracing, trains a small logistic-regression model
//! with split aggregation, and exports everything the run emitted — driver
//! op phases, stages, task attempts, collective steps, transport events,
//! ML iterations — as Chrome trace-event JSON under
//! `results/trace_run.json`. Open <https://ui.perfetto.dev> and drop the
//! file in to browse the run.
//!
//! The example then re-parses its own export with the in-repo JSON parser
//! and verifies every layer of the taxonomy shows up, so
//! `tools/check_hermetic.sh` can use it as the trace-export smoke test.
//! Exits non-zero if anything is missing.

use sparker::prelude::*;
use sparker_obs::{export, json, trace, Layer};

fn main() {
    trace::enable();

    // A small in-process cluster; transports, collectives and the scheduler
    // run the same code paths as the shaped benchmarks.
    let cluster = LocalCluster::new(ClusterSpec::local(4, 2));
    let profile = sparker_data::profiles::avazu().feature_scaled(2e-4); // 200 features
    let dim = profile.features();
    let samples = 512u64;
    let gen = profile.classification_gen();
    let parts = 2 * cluster.num_executors();
    let data = cluster
        .generate(parts, move |p| {
            gen.partition(p, parts, samples).into_iter().map(LabeledPoint::from).collect()
        })
        .cache();
    data.count().expect("preload");

    // Split aggregation with the auto-tuned collective selector: every
    // iteration asks the calibrated cost model which reduction algorithm to
    // run, and feeds the measured wall-clock back as selector telemetry.
    let opts = SplitAggOpts {
        selector: Some(SelectorOpts::Auto(sparker::tuner::CostModel::default_model())),
        hint_bytes: dim as u64 * 8,
        ..Default::default()
    };
    let (_, records) = LogisticRegression { iterations: 2, ..Default::default() }
        .with_mode(AggregationMode::Split(opts))
        .train(&data, dim)
        .expect("training");
    println!("trained {} iterations (split aggregation, auto-tuned)", records.len());

    // Scoped spans live under the cluster's History scope; gated spans are
    // unscoped. Grab both before the cluster drops.
    let mut spans = trace::snapshot_scope(cluster.history().scope());
    spans.extend(trace::take().into_iter().filter(|s| s.scope == 0));
    trace::disable();

    let json_text = export::chrome_trace_json(&spans);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/trace_run.json", &json_text).expect("write trace");

    // Validate the export with the in-repo parser: well-formed JSON, and at
    // least one event from every layer of the span taxonomy.
    let parsed = match json::parse(&json_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trace_run: exported JSON does not parse: {e:?}");
            std::process::exit(1);
        }
    };
    let events = parsed.as_array().unwrap_or_else(|| {
        eprintln!("trace_run: export is not a trace-event array");
        std::process::exit(1);
    });
    for layer in Layer::ALL {
        let n = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some(layer.as_str()))
            .count();
        println!("  layer {:<6} {:>6} events", layer.as_str(), n);
        if n == 0 {
            eprintln!("trace_run: no spans from layer '{}'", layer.as_str());
            std::process::exit(1);
        }
    }
    // The run above pushed real frames through the global pool, so the
    // per-class occupancy gauges must exist (back at zero now that every
    // frame is recycled) — the dashboard contract for `pool.class_*.in_use`.
    let pool_gauges: Vec<_> = sparker_obs::metrics::snapshot()
        .into_iter()
        .filter(|m| {
            m.name.starts_with("pool.class_")
                && m.name.ends_with(".in_use")
                && matches!(m.value, sparker_obs::metrics::MetricValue::Gauge(_))
        })
        .collect();
    if pool_gauges.is_empty() {
        eprintln!("trace_run: no pool.class_*.in_use occupancy gauges registered");
        std::process::exit(1);
    }
    println!("  pool occupancy gauges: {}", pool_gauges.len());

    // The auto-tuned run must leave the selector's telemetry behind: one
    // `tuner.selected.{algo}` counter per decision, and the predicted/actual
    // feedback gauge published by `Selector::observe` — the dashboard
    // contract for spotting stale calibrations.
    let metrics = sparker_obs::metrics::snapshot();
    let selected: Vec<_> = metrics
        .iter()
        .filter(|m| m.name.starts_with("tuner.selected."))
        .collect();
    if selected.is_empty() {
        eprintln!("trace_run: auto selector ran but exported no tuner.selected.* counters");
        std::process::exit(1);
    }
    for m in &selected {
        println!("  {} = {:?}", m.name, m.value);
    }
    if !metrics.iter().any(|m| {
        m.name == "tuner.predict_vs_actual_permille"
            && matches!(m.value, sparker_obs::metrics::MetricValue::Gauge(_))
    }) {
        eprintln!("trace_run: tuner.predict_vs_actual_permille feedback gauge missing");
        std::process::exit(1);
    }
    println!("  tuner feedback gauge present");

    println!(
        "trace_run OK: {} spans across all {} layers -> results/trace_run.json",
        events.len(),
        Layer::ALL.len()
    );
}
