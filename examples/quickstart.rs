//! Quickstart: tree aggregation vs Sparker's split aggregation on a local
//! in-process cluster.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 4-executor cluster with the paper's BIC network shaping (scaled
//! 16x down), sums an RDD of 1 MB `f64` arrays three ways — `treeAggregate`,
//! `treeAggregate` + in-memory merge, and `splitAggregate` — and prints the
//! compute/reduce decomposition of each, the same breakdown the paper's
//! Figure 16 plots.

use sparker::prelude::*;

fn main() {
    // 2 nodes x 2 executors x 2 cores, BIC-profile network slowed 16x so a
    // laptop reproduces cluster-like ratios.
    let spec = ClusterSpec::bic(2, 16.0).with_shape(2, 2);
    let cluster = LocalCluster::new(spec);
    println!(
        "cluster: {} executors x {} cores, profile '{}'",
        cluster.num_executors(),
        cluster.spec().cores_per_executor,
        cluster.spec().profile.name
    );

    // An RDD of dense vectors, generated and cached on the executors
    // (MEMORY_ONLY + count preload, like the paper's micro-benchmark).
    let elems = 128 * 1024; // 1 MiB of f64 per partition
    let partitions = 2 * cluster.num_executors() * cluster.spec().cores_per_executor;
    let data = cluster
        .generate(partitions, move |p| vec![vec![p as f64; elems]; 1])
        .cache();
    data.count().expect("preload");

    let seq = move |mut acc: F64Array, v: &Vec<f64>| {
        for (a, x) in acc.0.iter_mut().zip(v) {
            *a += *x;
        }
        acc
    };

    // 1. Spark's treeAggregate (the baseline).
    let (tree_result, tree) = data
        .tree_aggregate(
            F64Array(vec![0.0; elems]),
            seq,
            |mut a, b| {
                sparker::dense::merge(&mut a, b);
                a
            },
            TreeAggOpts::default(),
        )
        .expect("tree aggregate");

    // 2. treeAggregate with In-Memory Merge.
    let (_, imm) = data
        .tree_aggregate(
            F64Array(vec![0.0; elems]),
            seq,
            |mut a, b| {
                sparker::dense::merge(&mut a, b);
                a
            },
            TreeAggOpts { depth: 2, imm: true },
        )
        .expect("tree+imm aggregate");

    // 3. Sparker's splitAggregate: the same five callbacks as the paper's
    //    Figure 6, with ring reduce-scatter underneath.
    let (split_result, split) = data
        .split_aggregate(
            F64Array(vec![0.0; elems]),
            seq,
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            SplitAggOpts::default(),
        )
        .expect("split aggregate");

    // Same answer, different cost.
    let expected: f64 = (0..partitions).map(|p| p as f64).sum();
    assert_eq!(tree_result.0[0], expected);
    assert_eq!(sparker::dense::to_vec(split_result)[0], expected);

    println!("\n{:<10} {:>10} {:>10} {:>12} {:>10}", "strategy", "compute", "reduce", "ser bytes", "to driver");
    for m in [&tree, &imm, &split] {
        println!(
            "{:<10} {:>9.0}ms {:>9.0}ms {:>11}KB {:>9}KB",
            m.strategy.name(),
            m.compute.as_secs_f64() * 1e3,
            m.reduce.as_secs_f64() * 1e3,
            m.ser_bytes / 1024,
            m.bytes_to_driver / 1024,
        );
    }
    println!(
        "\nsplit aggregation reduced {:.1}x faster than tree aggregation",
        tree.reduce.as_secs_f64() / split.reduce.as_secs_f64()
    );
}
