//! Paper-scale what-if through the discrete-event simulator: LDA-N on the
//! AWS cluster, Spark vs Sparker, at increasing core counts (the paper's
//! Figure 18).
//!
//! ```bash
//! cargo run --release --example cluster_simulation
//! ```

use sparker_sim::aggsim::Strategy;
use sparker_sim::cluster::SimCluster;
use sparker_sim::mlrun::simulate_training;
use sparker_sim::workloads::by_name;

fn main() {
    let w = by_name("LDA-N").expect("workload");
    println!(
        "LDA-N: {} documents, vocab {}, K={} -> {:.0} MiB aggregator per iteration",
        w.samples,
        w.features,
        w.topics,
        w.agg_bytes() / (1024.0 * 1024.0)
    );
    println!("simulating 15 iterations on EC2 m5d.24xlarge nodes (25 Gbps)\n");

    let split = Strategy::Split { parallelism: 4, topology_aware: true };
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "cores", "spark compute", "spark reduce", "sparker reduce", "sparker driver", "speedup"
    );
    let intra = SimCluster::aws().with_executors(24, 4);
    for cores in [8usize, 96, 240, 480, 960] {
        let c = if cores <= 96 {
            intra.shaped_for_cores(cores)
        } else {
            SimCluster::aws().shaped_for_cores(cores)
        };
        let spark = simulate_training(&c, &w, Strategy::Tree, Some(15));
        let sparker = simulate_training(&c, &w, split, Some(15));
        println!(
            "{:>6} {:>13.1}s {:>13.1}s {:>13.1}s {:>13.1}s {:>9.2}x",
            cores,
            spark.agg_compute,
            spark.agg_reduce,
            sparker.agg_reduce,
            sparker.driver,
            spark.total() / sparker.total()
        );
    }
    println!("\npaper reference: reduction 26.4s vs 6.3s at 8 cores (4.19x), 111.3s vs 15.4s");
    println!("at 960 cores (7.22x); with reduction fixed, the driver becomes the bottleneck.");
}
