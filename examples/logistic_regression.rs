//! Logistic regression on a synthetic avazu-like dataset, trained twice:
//! once with vanilla tree aggregation and once with Sparker's split
//! aggregation.
//!
//! ```bash
//! cargo run --release --example logistic_regression
//! ```
//!
//! The models come out numerically identical (split aggregation changes the
//! execution plan, not the math); per-iteration aggregation metrics show
//! where the time goes.

use sparker::data::profiles::avazu;
use sparker::ml::point::LabeledPoint;
use sparker::prelude::*;

fn main() {
    // avazu shrunk to laptop scale: ~4500 samples x 2000 features.
    let profile = avazu().scaled(2e-4).feature_scaled(5e-4);
    let dim = profile.features();
    let samples = profile.samples();
    println!(
        "dataset: {} ({} samples x {} features, {} nnz/sample)",
        profile.name, samples, dim, profile.nnz_per_sample
    );

    let cluster = LocalCluster::new(ClusterSpec::bic(2, 16.0).with_shape(2, 2));
    let parts = 2 * cluster.num_executors();
    let gen = profile.classification_gen();
    let g = gen.clone();
    let data = cluster
        .generate(parts, move |p| {
            g.partition(p, parts, samples)
                .into_iter()
                .map(LabeledPoint::from)
                .collect()
        })
        .cache();
    data.count().expect("preload");

    let lr = LogisticRegression { iterations: 12, ..Default::default() };
    for mode in [AggregationMode::Tree, AggregationMode::split()] {
        let start = std::time::Instant::now();
        let (model, records) = lr.with_mode(mode).train(&data, dim).expect("train");
        let wall = start.elapsed();
        let agg_reduce: f64 = records.iter().map(|r| r.metrics.reduce.as_secs_f64()).sum();
        let agg_compute: f64 = records.iter().map(|r| r.metrics.compute.as_secs_f64()).sum();

        // Hold-out accuracy on fresh samples from the same generator.
        let test: Vec<LabeledPoint> = (samples..samples + 500)
            .map(|i| LabeledPoint::from(gen.sample(i)))
            .collect();
        println!(
            "\nmode {:<9} wall {:>6.2}s  agg-compute {:>5.2}s  agg-reduce {:>5.2}s  \
             final loss {:.4}  test accuracy {:.3}",
            mode.name(),
            wall.as_secs_f64(),
            agg_compute,
            agg_reduce,
            records.last().unwrap().loss,
            model.accuracy(&test)
        );
    }
    println!("\n(same model either way — split aggregation only changes how the gradient");
    println!(" gets reduced, which is the paper's backward-compatibility claim)");
}
