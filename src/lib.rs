//! Workspace umbrella crate: hosts cross-crate integration tests and examples.
