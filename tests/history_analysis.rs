//! Integration: replaying the paper's §2.3 methodology — stage-level
//! history analysis — against real engine executions.

use sparker::ml::point::LabeledPoint;
use sparker::prelude::*;

fn train(cluster: &LocalCluster, mode: AggregationMode) {
    let gen = sparker::data::profiles::avazu()
        .feature_scaled(3.2e-5)
        .classification_gen();
    let parts = 4;
    let data = cluster
        .generate(parts, move |p| {
            gen.partition(p, parts, 200).into_iter().map(LabeledPoint::from).collect()
        })
        .cache();
    data.count().unwrap();
    let lr = LogisticRegression { iterations: 3, ..Default::default() }.with_mode(mode);
    lr.train(&data, 32).unwrap();
}

#[test]
fn history_records_every_stage_kind_of_a_training_run() {
    let cluster = LocalCluster::local(2, 2);
    train(&cluster, AggregationMode::Tree);
    let kinds: std::collections::HashSet<String> = cluster
        .history()
        .snapshot()
        .iter()
        .map(|e| e.kind().to_string())
        .collect();
    for expected in ["count", "broadcast", "tree-compute", "tree-final"] {
        assert!(kinds.contains(expected), "missing stage kind {expected}: {kinds:?}");
    }
}

#[test]
fn split_mode_leaves_ring_stages_in_the_log() {
    let cluster = LocalCluster::local(2, 2);
    train(&cluster, AggregationMode::split());
    let kinds: std::collections::HashSet<String> = cluster
        .history()
        .snapshot()
        .iter()
        .map(|e| e.kind().to_string())
        .collect();
    assert!(kinds.contains("split-imm"), "{kinds:?}");
    assert!(kinds.contains("split-ring"), "{kinds:?}");
    assert!(!kinds.contains("tree-compute"), "no tree stages under split mode");
}

#[test]
fn aggregation_share_is_computable_like_figure_2() {
    let cluster = LocalCluster::local(2, 2);
    train(&cluster, AggregationMode::Tree);
    let share = cluster.history().aggregation_share();
    assert!(
        (0.05..1.0).contains(&share),
        "aggregation share {share} out of plausible range"
    );
    // Summary is non-empty and sorted by descending time.
    let summary = cluster.history().summary();
    assert!(!summary.is_empty());
    for w in summary.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

#[test]
fn attempts_include_retries() {
    let cluster = LocalCluster::local(2, 1);
    cluster.fault_plan().fail_once("count", 0);
    let data = cluster.generate(2, |p| vec![p as u64]);
    data.count().unwrap();
    let events = cluster.history().snapshot();
    let count_stage = events.iter().find(|e| e.label == "count").unwrap();
    assert_eq!(count_stage.tasks, 2);
    assert_eq!(count_stage.attempts, 3, "one retry recorded");
}
