//! Observability disabled-path overhead guarantees.
//!
//! With fine-grained tracing off (the default), an instrumented run must
//! not touch the gated tier at all: no per-thread trace buffers are
//! allocated and no task/step/net/ml spans reach the sink. The always-on
//! scoped tier (stage history, op phases) keeps working regardless.
//!
//! These tests must live in their own integration-test binary: the enable
//! flag is process-global, and every test here relies on it staying off.

use std::sync::Arc;

use sparker::prelude::*;
use sparker_engine::ops::split_aggregate::split_aggregate;
use sparker_engine::rdd::RddRef;
use sparker_engine::rdds::ParallelCollection;
use sparker_obs::{trace, Layer};

fn run_one_split(cluster: &LocalCluster) {
    let rdd: RddRef<u64> = Arc::new(ParallelCollection::new((1..=64).collect(), 8));
    let (v, _) = split_aggregate(
        cluster,
        rdd,
        vec![0.0f64; 32],
        |mut acc: Vec<f64>, x: &u64| {
            for a in acc.iter_mut() {
                *a += *x as f64;
            }
            acc
        },
        |a: &mut Vec<f64>, b: Vec<f64>| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        },
        |u: &Vec<f64>, i: usize, n: usize| {
            let (lo, hi) = slice_bounds(u.len(), i, n);
            SumSegment(u[lo..hi].to_vec())
        },
        |a: &mut SumSegment, b: SumSegment| {
            for (x, y) in a.0.iter_mut().zip(b.0) {
                *x += y;
            }
        },
        |segs: Vec<SumSegment>| SumSegment(segs.into_iter().flat_map(|s| s.0).collect()),
        SplitAggOpts::default(),
    )
    .unwrap();
    let want = (1..=64u64).sum::<u64>() as f64;
    assert_eq!(v.0, vec![want; 32]);
}

#[test]
fn disabled_tracing_allocates_no_buffers_and_records_no_gated_spans() {
    assert!(!trace::enabled(), "tracing must be off by default");
    let buffers_before = trace::thread_buffers_created();

    let cluster = LocalCluster::new(ClusterSpec::local(4, 2));
    run_one_split(&cluster);

    assert_eq!(
        trace::thread_buffers_created(),
        buffers_before,
        "disabled run allocated per-thread trace buffers"
    );
    let spans = trace::snapshot_scope(cluster.history().scope());
    for layer in [Layer::Task, Layer::Step, Layer::Net, Layer::Ml] {
        assert!(
            spans.iter().all(|s| s.layer != layer),
            "disabled run recorded a {layer:?} span"
        );
    }
}

#[test]
fn history_and_metrics_work_with_tracing_disabled() {
    assert!(!trace::enabled(), "tracing must be off by default");
    let cluster = LocalCluster::new(ClusterSpec::local(2, 2));
    run_one_split(&cluster);

    // The scoped tier is always on: the history-log view and the driver op
    // phases are intact even though fine-grained tracing never ran.
    let history = cluster.history();
    assert!(history.time_with_prefix("split-imm-op") > std::time::Duration::ZERO);
    assert!(history.time_with_prefix("split-ring-op") > std::time::Duration::ZERO);
    assert!(history.aggregation_share() > 0.0);
    let spans = trace::snapshot_scope(history.scope());
    assert!(
        spans.iter().any(|s| s.layer == Layer::Driver && s.name.starts_with("split-compute")),
        "driver op-phase spans must record while disabled"
    );
}
