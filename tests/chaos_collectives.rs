//! Chaos suite: transport-level fault injection driven through the
//! collective aggregation paths.
//!
//! Every case wires a deterministic [`NetFaultPlan`] (drops, delays,
//! corruption, executor kills, partitions) around the scalable communicator
//! and runs split aggregation over integer-valued `f64` data, so any merge
//! order yields bit-exact results. The contract under chaos:
//!
//! * the op returns the exact aggregate, or a clean typed [`EngineError`] —
//!   never a silently wrong answer, never a panic;
//! * every wait is bounded (collective receive deadline, stage timeout) —
//!   never a hang;
//! * when the gang budget is exhausted, the op degrades to the tree
//!   fallback, visibly (History event + `AggMetrics::downgraded`).
//!
//! All seeds are fixed, so the suite is replayable offline (it runs as part
//! of `tools/check_hermetic.sh`).

use std::time::{Duration, Instant};

use sparker::engine::task::EngineResult;
use sparker::net::{ExecutorId, NetFaultPlan};
use sparker::prelude::*;
use sparker::sparse::SparseAccum;
use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, Source};

const EXECUTORS: usize = 3;
const DIM: usize = 29;

/// Fast-failing spec for chaos runs: short collective deadline, two gang
/// attempts, bounded driver waits — faults must resolve in seconds, not the
/// production 300 s stage timeout.
fn chaos_spec(plan: NetFaultPlan) -> ClusterSpec {
    ClusterSpec::local(EXECUTORS, 2)
        .with_collective_recv_timeout(Duration::from_millis(200))
        .with_max_collective_attempts(2)
        .with_stage_timeout(Duration::from_secs(60))
        .with_sc_fault(plan)
}

/// Element `i` of the expected aggregate: `sum(1..=24) * (i + 1)`. All
/// arithmetic stays on integer-valued `f64`, so the result is bit-exact
/// regardless of reduction order or path (ring vs fallback).
fn expected() -> Vec<f64> {
    let total: f64 = (1..=24u64).map(|x| x as f64).sum();
    (0..DIM).map(|i| total * (i + 1) as f64).collect()
}

fn run_split(cluster: &LocalCluster) -> EngineResult<(Vec<f64>, AggMetrics)> {
    run_split_chunked(cluster, 1)
}

/// Like [`run_split`] but over the chunk-pipelined ring (`chunks > 1`
/// overlaps chunk sends with chunk merges inside every ring step).
fn run_split_chunked(
    cluster: &LocalCluster,
    chunks: usize,
) -> EngineResult<(Vec<f64>, AggMetrics)> {
    let data = cluster.parallelize((1..=24u64).collect::<Vec<_>>(), 6);
    data.split_aggregate(
        vec![0.0f64; DIM],
        |mut acc: Vec<f64>, x: &u64| {
            for (i, a) in acc.iter_mut().enumerate() {
                *a += (*x as f64) * (i + 1) as f64;
            }
            acc
        },
        |a: &mut Vec<f64>, b: Vec<f64>| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        },
        |u: &Vec<f64>, i: usize, n: usize| {
            let (lo, hi) = slice_bounds(u.len(), i, n);
            F64Array(u[lo..hi].to_vec())
        },
        |a: &mut F64Array, b: F64Array| {
            for (x, y) in a.0.iter_mut().zip(b.0) {
                *x += y;
            }
        },
        |segs: Vec<F64Array>| F64Array(segs.into_iter().flat_map(|s| s.0).collect()),
        SplitAggOpts { parallelism: Some(2), chunks, ..Default::default() },
    )
    .map(|(v, m)| (v.0, m))
}

/// Sparse variant of [`run_split`]: each item `x` contributes value `x` at
/// index `7x mod 29` (7 is coprime to 29, so the 24 items hit 24 distinct
/// indices). Per-partition density is 4/29 — segments leave the executors
/// sparse — while the merged density is 24/29, so with the default
/// threshold the adaptive segments must switch to dense *mid-reduction*,
/// under whatever faults the plan injects. Integer values keep the answer
/// bit-exact on every path.
fn run_split_sparse(
    cluster: &LocalCluster,
    adaptive: bool,
) -> EngineResult<(Vec<f64>, AggMetrics)> {
    let data = cluster.parallelize((1..=24u64).collect::<Vec<_>>(), 6);
    let split = if adaptive { sparker::sparse::split } else { sparker::sparse::split_sparse };
    data.split_aggregate(
        sparker::sparse::zeros(DIM),
        |mut acc: SparseAccum, x: &u64| {
            acc.add((*x as u32 * 7) % DIM as u32, *x as f64);
            acc
        },
        sparker::sparse::merge,
        split,
        sparker::sparse::merge_segments,
        sparker::sparse::concat,
        SplitAggOpts { parallelism: Some(2), ..Default::default() },
    )
    .map(|(v, m)| (v.to_dense(), m))
}

fn expected_sparse() -> Vec<f64> {
    let mut out = vec![0.0; DIM];
    for x in 1..=24u64 {
        out[(x as usize * 7) % DIM] += x as f64;
    }
    out
}

/// Draws a random fault plan over the 3-executor cluster: one to four faults
/// of any kind, on any directed link, with small sequence numbers so they
/// land inside the ring stage's actual send window.
fn arb_plan(src: &mut Source) -> NetFaultPlan {
    let mut plan = NetFaultPlan::new();
    let faults = src.usize_in(1..5);
    for _ in 0..faults {
        let from = src.usize_in(0..EXECUTORS) as u32;
        let to = (from + src.usize_in(1..EXECUTORS) as u32) % EXECUTORS as u32;
        let (from, to) = (ExecutorId(from), ExecutorId(to));
        let seq = src.u64_in(0..10);
        plan = match src.usize_in(0..5) {
            0 => plan.drop_nth(from, to, seq),
            1 => plan.corrupt_nth(from, to, seq),
            2 => plan.delay_nth(from, to, seq, Duration::from_millis(src.u64_in(1..400))),
            3 => plan.kill_after_sends(from, src.u64_in(0..6)),
            _ => plan.partition(&[(from, to)]),
        };
    }
    plan
}

#[test]
fn random_fault_plans_never_hang_and_never_corrupt() {
    // Low shrink budget: each case boots a cluster, so replays are not free.
    let cfg = Config { cases: 10, seed: 0x0c4a_05ca_fe00_0001, max_shrink_trials: 40 };
    check(&cfg, |src| {
        let plan = arb_plan(src);
        let cluster = LocalCluster::new(chaos_spec(plan));
        let t = Instant::now();
        let out = run_split(&cluster);
        let elapsed = t.elapsed();
        tk_assert!(elapsed < Duration::from_secs(30), "chaos case took {elapsed:?}");
        match out {
            // Whatever the faults were, a returned answer must be exact.
            Ok((v, _)) => tk_assert_eq!(v, expected()),
            // A typed error is an acceptable outcome of extreme fault
            // schedules; a wrong answer or a panic never is. (The return
            // type makes it an `EngineError` by construction.)
            Err(_) => {}
        }
        Ok(())
    });
}

#[test]
fn random_fault_plans_never_corrupt_sparse_or_adaptive_segments() {
    // Same contract as the dense case, driven through DenseOrSparse
    // segments: exact answer or typed error, bounded time, including the
    // mid-reduction sparse→dense switch under retries and gang
    // resubmission.
    let cfg = Config { cases: 8, seed: 0x0c4a_05ca_fe00_0002, max_shrink_trials: 30 };
    check(&cfg, |src| {
        let plan = arb_plan(src);
        let adaptive = src.bool_any();
        let cluster = LocalCluster::new(chaos_spec(plan));
        let t = Instant::now();
        let out = run_split_sparse(&cluster, adaptive);
        let elapsed = t.elapsed();
        tk_assert!(elapsed < Duration::from_secs(30), "chaos case took {elapsed:?}");
        match out {
            Ok((v, _)) => tk_assert_eq!(v, expected_sparse()),
            Err(_) => {}
        }
        Ok(())
    });
}

#[test]
fn kill_mid_ring_downgrades_adaptive_segments_to_tree_fallback() {
    let plan = NetFaultPlan::new().kill_after_sends(ExecutorId(1), 2);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split_sparse(&cluster, true).unwrap();
    assert_eq!(v, expected_sparse());
    assert!(m.downgraded, "gang exhaustion must be recorded in metrics");
}

#[test]
fn dropped_frame_retries_through_the_dense_switch() {
    // The drop forces a timeout + gang resubmission; the retried attempt
    // re-splits from the intact accumulators and must reach the identical
    // answer through the same sparse→dense switch.
    let plan = NetFaultPlan::new().drop_nth(ExecutorId(0), ExecutorId(1), 0);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split_sparse(&cluster, true).unwrap();
    assert_eq!(v, expected_sparse());
    assert!(!m.downgraded, "one transient drop must not exhaust the gang");
}

#[test]
fn corrupted_sparse_frame_is_rejected_and_retried() {
    // Corruption must surface as a typed codec/checksum failure (the
    // sparse decoder additionally validates sortedness and bounds), then
    // the retry completes exactly.
    let plan = NetFaultPlan::new().corrupt_nth(ExecutorId(2), ExecutorId(0), 1);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split_sparse(&cluster, false).unwrap();
    assert_eq!(v, expected_sparse());
    assert!(!m.downgraded);
}

#[test]
fn kill_mid_ring_degrades_to_tree_fallback_visible_in_history() {
    // Executor 1 dies (on the collective transport) after its second send —
    // mid reduce-scatter. Both gang attempts fail, the op downgrades, and
    // the fallback still produces the exact answer.
    let plan = NetFaultPlan::new().kill_after_sends(ExecutorId(1), 2);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split(&cluster).unwrap();
    assert_eq!(v, expected());
    assert!(m.downgraded, "gang exhaustion must be recorded in metrics");
    let kinds: Vec<String> =
        cluster.history().snapshot().iter().map(|e| e.kind().to_string()).collect();
    for want in ["split-downgrade", "split-fallback", "split-fallback-final"] {
        assert!(kinds.iter().any(|k| k == want), "missing {want} in {kinds:?}");
    }
}

#[test]
fn single_dropped_frame_recovers_within_gang_budget() {
    let plan = NetFaultPlan::new().drop_nth(ExecutorId(0), ExecutorId(1), 0);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split(&cluster).unwrap();
    assert_eq!(v, expected());
    assert!(!m.downgraded, "one transient drop must not exhaust the gang");
    // The receiver timed out on the missing frame, the gang resubmitted,
    // and the retry ran clean: more ring attempts than executors.
    let snap = cluster.history().snapshot();
    let ring = snap.iter().find(|e| e.kind() == "split-ring").expect("ring stage ran");
    assert!(ring.attempts > EXECUTORS as u32, "attempts = {}", ring.attempts);
}

#[test]
fn corrupted_frame_is_rejected_and_retried() {
    // The epoch header's checksum turns the flipped byte into a codec error
    // on the receiver; the gang resubmits and the answer stays exact.
    let plan = NetFaultPlan::new().corrupt_nth(ExecutorId(2), ExecutorId(0), 1);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split(&cluster).unwrap();
    assert_eq!(v, expected());
    assert!(!m.downgraded);
}

#[test]
fn partitioned_link_exhausts_gang_and_still_answers_exactly() {
    // A permanently dead directed link starves the same receive on every
    // attempt. The collective deadline bounds each attempt, the gang budget
    // bounds the attempts, and the fallback completes over the BM path.
    let plan = NetFaultPlan::new().partition(&[(ExecutorId(0), ExecutorId(1))]);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let t = Instant::now();
    let (v, m) = run_split(&cluster).unwrap();
    assert_eq!(v, expected());
    assert!(m.downgraded);
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "degradation must be bounded by deadlines, took {:?}",
        t.elapsed()
    );
}

#[test]
fn chunked_ring_random_fault_plans_never_hang_and_never_corrupt() {
    // Same contract as the unpipelined case, with chunk pipelining on: a
    // drop/corrupt/kill can now land on any *chunk* frame mid-step, and the
    // outcome must still be the exact answer or a typed error, in bounded
    // time.
    let cfg = Config { cases: 8, seed: 0x0c4a_05ca_fe00_0003, max_shrink_trials: 30 };
    check(&cfg, |src| {
        let plan = arb_plan(src);
        let chunks = src.usize_in(1..5);
        let cluster = LocalCluster::new(chaos_spec(plan));
        let t = Instant::now();
        let out = run_split_chunked(&cluster, chunks);
        let elapsed = t.elapsed();
        tk_assert!(elapsed < Duration::from_secs(30), "chaos case took {elapsed:?}");
        match out {
            Ok((v, _)) => tk_assert_eq!(v, expected()),
            Err(_) => {}
        }
        Ok(())
    });
}

#[test]
fn chunk_frame_drop_retries_within_gang_budget() {
    // With C = 3 chunks per segment the dropped frame is a chunk frame in
    // the middle of a pipelined step; the receive deadline catches it and
    // the resubmitted gang must answer exactly without downgrading.
    let plan = NetFaultPlan::new().drop_nth(ExecutorId(0), ExecutorId(1), 2);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split_chunked(&cluster, 3).unwrap();
    assert_eq!(v, expected());
    assert!(!m.downgraded, "one dropped chunk must not exhaust the gang");
}

#[test]
fn corrupted_chunk_frame_is_rejected_and_retried() {
    // The checksum rejects the flipped chunk; the retry replays the whole
    // pipelined schedule and must land on the identical answer.
    let plan = NetFaultPlan::new().corrupt_nth(ExecutorId(2), ExecutorId(0), 3);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let (v, m) = run_split_chunked(&cluster, 3).unwrap();
    assert_eq!(v, expected());
    assert!(!m.downgraded);
}

#[test]
fn kill_mid_pipelined_ring_degrades_to_tree_fallback() {
    // Executor death mid-pipeline: both gang attempts fail, and the tree
    // fallback (which splits over the same P*N*C segment space) still
    // produces the exact answer.
    let plan = NetFaultPlan::new().kill_after_sends(ExecutorId(1), 4);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let t = Instant::now();
    let (v, m) = run_split_chunked(&cluster, 3).unwrap();
    assert_eq!(v, expected());
    assert!(m.downgraded, "gang exhaustion must be recorded in metrics");
    assert!(t.elapsed() < Duration::from_secs(30), "fallback must be bounded");
}

#[test]
fn striped_imm_concurrent_merges_lose_nothing_under_load() {
    // Mirror of engine::objects::concurrent_merges_lose_nothing at chaos
    // scale: heavier values (vectors), more threads than stripes, and both
    // stripe configurations must agree exactly with the serial total.
    use sparker::engine::objects::{MutableObjectManager, ObjectId};
    let id = ObjectId { op: 9, slot: 0 };
    let threads = 8usize;
    let per = 500usize;
    let mut totals = Vec::new();
    for stripes in [1usize, 8] {
        let m = std::sync::Arc::new(MutableObjectManager::with_stripes(stripes));
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let v = vec![(t * per + i) as f64; DIM];
                        m.merge_in(id, v, |a: &mut Vec<f64>, b: Vec<f64>| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                        });
                    }
                });
            }
        });
        let got = m.take::<Vec<f64>>(id).expect("merged vector present");
        totals.push(got);
    }
    let want: f64 = (0..threads * per).map(|k| k as f64).sum();
    assert_eq!(totals[0], vec![want; DIM], "single-stripe total wrong");
    assert_eq!(totals[0], totals[1], "striped IMM diverged from locked IMM");
}

#[test]
fn allreduce_gang_recovers_from_a_dropped_frame() {
    let plan = NetFaultPlan::new().drop_nth(ExecutorId(1), ExecutorId(2), 0);
    let cluster = LocalCluster::new(chaos_spec(plan));
    let data = cluster.parallelize((1..=24u64).collect::<Vec<_>>(), 6);
    let out = data
        .allreduce_aggregate(
            vec![0.0f64; DIM],
            |mut acc: Vec<f64>, x: &u64| {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a += (*x as f64) * (i + 1) as f64;
                }
                acc
            },
            |a: &mut Vec<f64>, b: Vec<f64>| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            },
            |u: &Vec<f64>, i: usize, n: usize| {
                let (lo, hi) = slice_bounds(u.len(), i, n);
                SumSegment(u[lo..hi].to_vec())
            },
            |a: &mut SumSegment, b: SumSegment| {
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            |segs: Vec<SumSegment>| SumSegment(segs.into_iter().flat_map(|s| s.0).collect()),
            Some(2),
        )
        .unwrap();
    assert_eq!(out.value.0, expected());
}
