//! Property-based tests on the auto-tuned collectives:
//!
//! * the hierarchical reduce-scatter equals a sequential reduction for
//!   arbitrary node groupings, parallelism, and chunk counts — and is
//!   therefore bit-exact with the flat ring, which satisfies the same
//!   invariant (`prop_collectives`) on the same logical aggregator;
//! * leaders jointly own every global segment exactly once, non-leaders
//!   own nothing, and [`hierarchical_segment_count`] is the count the
//!   cluster actually requires;
//! * the selector is deterministic: a fixed calibration and shape always
//!   yield the same decision, including across selector instances and
//!   through the text round-trip of the model;
//! * every candidate's predicted cost is monotone in message bytes.

use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, Source};

use sparker::collectives::hierarchical::{
    hierarchical_allreduce, hierarchical_reduce_scatter, hierarchical_segment_count,
};
use sparker::collectives::segment::Segment;
use sparker::collectives::testing::{run_ring_cluster, RingClusterSpec};
use sparker::net::topology::{round_robin_layout, RingOrder, RingTopology};
use sparker::prelude::*;
use sparker_tuner::{Algo, CostModel, JobShape, Selector};

fn cfg() -> Config {
    Config::with_cases(12)
}

/// Per-rank input: rank r's segment g holds `values[g]` shifted by rank.
fn seed(rank: usize, values: &[i64]) -> Vec<U64SumSegment> {
    values
        .iter()
        .map(|&v| U64SumSegment(vec![(v as u64).wrapping_add(rank as u64 * 1_000_003)]))
        .collect()
}

fn expected(g: usize, values: &[i64], n: usize) -> u64 {
    (0..n).fold(0u64, |acc, r| {
        acc.wrapping_add((values[g] as u64).wrapping_add(r as u64 * 1_000_003))
    })
}

/// Draw a random cluster shape and reconstruct the ring the test harness
/// will build, so the property can consult the real node grouping.
fn arb_cluster(src: &mut Source) -> (RingClusterSpec, RingTopology) {
    let nodes = src.usize_in(1..4);
    let epn = src.usize_in(1..4);
    let parallelism = src.usize_in(1..3);
    let spec = RingClusterSpec::unshaped(nodes, epn, parallelism);
    let ring = RingTopology::new(
        round_robin_layout(nodes, epn, 1),
        RingOrder::TopologyAware,
        parallelism,
    );
    (spec, ring)
}

#[test]
fn hierarchical_reduce_scatter_equals_sequential() {
    check(&cfg(), |src| {
        let (spec, ring) = arb_cluster(src);
        let chunks = src.usize_in(1..4);
        let n = spec.total_executors();
        let total = hierarchical_segment_count(&ring, chunks);
        // The grouping helper shared with `RingTopology` puts every host in
        // one group, so the count must be P·L·C with L = physical nodes.
        tk_assert_eq!(total, spec.parallelism * spec.nodes.min(n) * chunks);
        let base = src.vec_of(1..6, |s| s.i64_any());
        let values: Vec<i64> = (0..total).map(|i| base[i % base.len()]).collect();
        let v2 = values.clone();
        let per_rank = run_ring_cluster(&spec, move |comm| {
            let segs = seed(comm.rank(), &v2);
            sparker::collectives::hierarchical::hierarchical_reduce_scatter_chunked_by(
                &comm,
                segs,
                &|acc: &mut U64SumSegment, inc: U64SumSegment| acc.merge_from(&inc),
                chunks,
            )
            .unwrap()
        });
        let mut seen = vec![false; total];
        for owned in &per_rank {
            for o in owned {
                tk_assert!(!seen[o.index], "segment {} owned twice", o.index);
                seen[o.index] = true;
                tk_assert_eq!(o.segment.0[0], expected(o.index, &values, n));
            }
        }
        tk_assert!(seen.iter().all(|&s| s), "not all segments owned: {seen:?}");
        // Exactly the leaders hold segments: one owner group per node.
        let owners = per_rank.iter().filter(|r| !r.is_empty()).count();
        tk_assert_eq!(owners, if n == 1 { 1 } else { spec.nodes.min(n) });
        Ok(())
    });
}

#[test]
fn hierarchical_allreduce_agrees_on_every_rank() {
    check(&cfg(), |src| {
        let (spec, ring) = arb_cluster(src);
        let n = spec.total_executors();
        let total = hierarchical_segment_count(&ring, 1);
        let base = src.vec_of(1..5, |s| s.i64_any());
        let values: Vec<i64> = (0..total).map(|i| base[i % base.len()]).collect();
        let v2 = values.clone();
        let per_rank = run_ring_cluster(&spec, move |comm| {
            let segs = seed(comm.rank(), &v2);
            hierarchical_allreduce(&comm, segs).unwrap()
        });
        for result in &per_rank {
            tk_assert_eq!(result.len(), total);
            for (g, seg) in result.iter().enumerate() {
                tk_assert_eq!(seg.0[0], expected(g, &values, n));
            }
        }
        Ok(())
    });
}

#[test]
fn degenerate_grouping_matches_flat_ring_bit_for_bit() {
    // Every executor on its own node: the hierarchy *is* the flat ring, and
    // the two paths must agree byte-for-byte on the same input.
    check(&cfg(), |src| {
        let n = src.usize_in(2..5);
        let parallelism = src.usize_in(1..3);
        let spec = RingClusterSpec::unshaped(n, 1, parallelism);
        let total = parallelism * n;
        let base = src.vec_of(1..6, |s| s.i64_any());
        let values: Vec<i64> = (0..total).map(|i| base[i % base.len()]).collect();
        let (vh, vf) = (values.clone(), values.clone());
        let hier = run_ring_cluster(&spec, move |comm| {
            hierarchical_reduce_scatter(&comm, seed(comm.rank(), &vh)).unwrap()
        });
        let flat = run_ring_cluster(&spec, move |comm| {
            sparker::collectives::ring::ring_reduce_scatter(&comm, seed(comm.rank(), &vf))
                .unwrap()
        });
        for (h, f) in hier.iter().zip(flat.iter()) {
            tk_assert_eq!(h.len(), f.len());
            for (ho, fo) in h.iter().zip(f.iter()) {
                tk_assert_eq!(ho.index, fo.index);
                tk_assert_eq!(ho.segment.0, fo.segment.0);
            }
        }
        Ok(())
    });
}

fn arb_shape(src: &mut Source) -> JobShape {
    let executors = src.usize_in(2..200);
    JobShape {
        bytes: src.u64_in(1..(32 << 20)),
        density_permille: src.usize_in(1..1001) as u32,
        executors,
        nodes: src.usize_in(1..21).min(executors),
        parallelism: src.usize_in(1..16),
    }
}

#[test]
fn selector_is_deterministic() {
    check(&cfg(), |src| {
        let shape = arb_shape(src);
        let model = CostModel::default_model();
        let a = Selector::new(model).select(&shape);
        let b = Selector::new(model).select(&shape);
        tk_assert_eq!(a, b, "same calibration + shape must decide identically");
        // The decision survives the calibration text round-trip, so a
        // persisted model replays the same choices.
        let reread = CostModel::from_text(&model.to_text());
        tk_assert!(reread.is_ok(), "model text round-trip failed: {:?}", reread.err());
        let c = Selector::new(reread.unwrap()).select(&shape);
        tk_assert_eq!(a, c, "persisted calibration must decide identically");
        Ok(())
    });
}

#[test]
fn predicted_cost_is_monotone_in_bytes() {
    check(&cfg(), |src| {
        let mut small = arb_shape(src);
        let mut big = small;
        small.bytes = src.u64_in(1..(4 << 20));
        big.bytes = small.bytes + src.u64_in(0..(28 << 20));
        let model = CostModel::default_model();
        for algo in Algo::candidates() {
            let lo = model.predict(algo, &small);
            let hi = model.predict(algo, &big);
            tk_assert!(
                lo <= hi * (1.0 + 1e-12),
                "{algo:?}: predict({}) = {lo} > predict({}) = {hi}",
                small.bytes,
                big.bytes
            );
        }
        Ok(())
    });
}
