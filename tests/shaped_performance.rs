//! Integration: the paper's performance ordering holds on the *real*
//! threaded engine under shaped networking — measured wall clock, not
//! simulation. Margins are deliberately loose (CI hosts are noisy); the
//! harness binaries measure the precise factors.

use sparker::prelude::*;

const SCALE: f64 = 16.0;

fn measure(nodes: usize, elems: usize, strategy: &str) -> f64 {
    let cluster = LocalCluster::new(ClusterSpec::bic(nodes, SCALE).with_shape(2, 1));
    let partitions = 2 * cluster.num_executors();
    let data = cluster
        .generate(partitions, move |p| vec![vec![p as f64; elems]; 1])
        .cache();
    data.count().unwrap();
    let seq = move |mut acc: F64Array, v: &Vec<f64>| {
        for (a, x) in acc.0.iter_mut().zip(v) {
            *a += *x;
        }
        acc
    };
    let zero = F64Array(vec![0.0; elems]);
    let metrics = match strategy {
        "tree" => {
            data.tree_aggregate(
                zero,
                seq,
                |mut a, b| {
                    sparker::dense::merge(&mut a, b);
                    a
                },
                TreeAggOpts::default(),
            )
            .unwrap()
            .1
        }
        _ => {
            data.split_aggregate(
                zero,
                seq,
                sparker::dense::merge,
                sparker::dense::split,
                sparker::dense::merge_segments,
                sparker::dense::concat,
                SplitAggOpts::default(),
            )
            .unwrap()
            .1
        }
    };
    metrics.reduce.as_secs_f64()
}

#[test]
fn split_reduces_faster_than_tree_on_medium_aggregators() {
    // 8MB paper-equivalent on 2 nodes.
    let elems = (8.0 * 1024.0 * 1024.0 / SCALE / 8.0) as usize;
    let tree = measure(2, elems, "tree");
    let split = measure(2, elems, "split");
    assert!(
        tree > split * 1.2,
        "split must beat tree by a clear margin: tree {tree:.3}s vs split {split:.3}s"
    );
}

#[test]
fn split_reduce_time_grows_slowly_with_nodes() {
    let elems = (8.0 * 1024.0 * 1024.0 / SCALE / 8.0) as usize;
    let one = measure(1, elems, "split");
    let four = measure(4, elems, "split");
    // Paper: 8-node time is 1.12x of 1-node at 256MB. Allow generous noise.
    assert!(
        four < one * 4.0,
        "split reduce should be near-flat in node count: {one:.3}s -> {four:.3}s"
    );
}
