//! End-to-end trace pipeline on the threaded engine.
//!
//! Enables fine-grained tracing, trains a model with both aggregation
//! modes, and checks the acceptance criteria of the observability
//! subsystem: every layer of the span taxonomy emits, the Chrome trace
//! export round-trips through the in-repo JSON parser, and the Fig 2
//! breakdown derived from the raw trace agrees with the `History`-derived
//! one within 5%.
//!
//! Lives in its own integration-test binary because it flips the
//! process-global enable flag.

use std::sync::Mutex;

use sparker::prelude::*;
use sparker_obs::{export, json, trace, Layer};

/// The enable flag and the sink are process-global, and both tests drain
/// the sink with `take()` — serialize them.
static GLOBAL: Mutex<()> = Mutex::new(());

fn train_lr(cluster: &LocalCluster, mode: AggregationMode) {
    let profile = sparker_data::profiles::avazu().feature_scaled(1e-4); // 100 features
    let dim = profile.features();
    let gen = profile.classification_gen();
    let parts = 2 * cluster.num_executors();
    let data = cluster
        .generate(parts, move |p| {
            gen.partition(p, parts, 256).into_iter().map(LabeledPoint::from).collect()
        })
        .cache();
    data.count().unwrap();
    LogisticRegression { iterations: 2, ..Default::default() }
        .with_mode(mode)
        .train(&data, dim)
        .unwrap();
}

#[test]
fn trace_derived_breakdown_matches_history_within_5_percent() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    trace::enable();
    let _ = trace::take(); // drop any leftovers from a previous test

    let mut layers_seen = std::collections::BTreeSet::new();
    for mode in [AggregationMode::Tree, AggregationMode::split()] {
        let cluster = LocalCluster::new(ClusterSpec::local(4, 2));
        train_lr(&cluster, mode);

        // --- Fig 2 cross-check: History view vs raw-trace view ----------
        let history_share = cluster.history().aggregation_share();
        let spans = trace::snapshot_scope(cluster.history().scope());
        let breakdown = export::stage_breakdown(&spans);
        let trace_share = breakdown.aggregation_share();
        assert!(history_share > 0.0, "workload must spend time aggregating");
        assert!(
            (history_share - trace_share).abs() <= 0.05,
            "mode {}: history share {history_share:.4} vs trace share {trace_share:.4}",
            mode.name()
        );

        // Per-kind totals agree too (History::summary vs Breakdown rows).
        let summary = cluster.history().summary();
        assert_eq!(summary.len(), breakdown.rows.len());
        for (kind, dur, _) in &summary {
            let row = breakdown
                .rows
                .iter()
                .find(|r| &r.kind == kind)
                .unwrap_or_else(|| panic!("kind {kind} missing from trace breakdown"));
            let (a, b) = (dur.as_secs_f64(), row.total.as_secs_f64());
            assert!((a - b).abs() <= 0.05 * a.max(b).max(1e-9), "kind {kind}: {a} vs {b}");
        }

        // --- layer coverage (checked across both modes below: tree
        // aggregation runs no collectives, so Step only appears for split)
        let mut all = spans;
        all.extend(trace::take().into_iter().filter(|s| s.scope == 0));
        layers_seen.extend(all.iter().map(|s| s.layer));

        // --- Chrome export round-trips through the in-repo parser -------
        let out = export::chrome_trace_json(&all);
        let parsed = json::parse(&out).expect("chrome trace JSON must parse");
        let events = parsed.as_array().expect("trace-event array");
        assert_eq!(events.len(), all.len());
        for (e, s) in events.iter().zip(&all) {
            assert_eq!(e.get("cat").and_then(|c| c.as_str()), Some(s.layer.as_str()));
            assert_eq!(e.get("name").and_then(|n| n.as_str()), Some(s.name.as_str()));
        }
    }

    for layer in Layer::ALL {
        assert!(layers_seen.contains(&layer), "no spans from layer {layer:?}");
    }

    trace::disable();
}

#[test]
fn collective_steps_carry_peer_bytes_and_epoch() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    trace::enable();
    let _ = trace::take(); // drop any leftovers from a previous test

    let cluster = LocalCluster::new(ClusterSpec::local(4, 1));
    train_lr(&cluster, AggregationMode::split());
    let steps: Vec<_> = trace::take()
        .into_iter()
        .filter(|s| s.layer == Layer::Step && s.name == "ring.step")
        .collect();
    assert!(!steps.is_empty(), "split training must emit ring steps");
    for s in &steps {
        for key in ["step", "rank", "peer", "send_bytes", "recv_bytes", "op", "epoch"] {
            assert!(s.arg(key).is_some(), "ring.step missing arg {key}");
        }
        assert_ne!(s.arg("rank"), s.arg("peer"), "ring peer must differ from rank");
    }

    trace::disable();
}
