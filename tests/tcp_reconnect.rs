//! Self-healing transport integration tests (DESIGN.md §5h): reconnection
//! with backoff heals severed links without data loss, the epoch fence stays
//! sound across a heal, heartbeat suspicion flags silent peers, and a spent
//! retry budget terminates in a typed [`NetError::PeerLost`] — never a hang.
//!
//! Obs counters are process-global and shared by every test in this binary,
//! so assertions use before/after deltas rather than absolute values.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use sparker_collectives::RingComm;
use sparker_net::tcp::{ReconnectConfig, TcpConfig, TcpTransport};
use sparker_net::topology::{round_robin_layout, RingOrder, RingTopology};
use sparker_net::transport::Transport;
use sparker_net::{ByteBuf, ExecutorId, NetError};
use sparker_obs::metrics;

/// Tunables scaled for tests: sub-second suspicion, fast dial rounds.
fn fast_cfg() -> TcpConfig {
    let mut cfg = TcpConfig::default();
    cfg.health.interval = Duration::from_millis(25);
    cfg.health.suspicion = Duration::from_millis(400);
    cfg.reconnect = ReconnectConfig {
        max_rounds: 6,
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(100),
        accept_window: Duration::from_millis(500),
    };
    cfg
}

fn counter(name: &str) -> u64 {
    metrics::counter(name).get()
}

#[test]
fn severed_link_heals_without_losing_queued_frames() {
    let (a, b) = TcpTransport::pair_loopback_with(1, fast_cfg()).unwrap();
    let healed_before = counter("net.reconnect.healed");

    // Prove the link works, then sever it from rank 0's side.
    a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"before")).unwrap();
    let got = b.recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(5)).unwrap();
    assert_eq!(&got[..], b"before");
    a.kill_connection(1).unwrap();

    // A frame queued while the link is down must survive into the healed
    // socket (asynchronous sends promise eventual delivery while the peer
    // lives).
    a.send(ExecutorId(0), ExecutorId(1), 0, ByteBuf::from_static(b"after heal")).unwrap();
    let got = b.recv_timeout(ExecutorId(1), ExecutorId(0), 0, Duration::from_secs(10)).unwrap();
    assert_eq!(&got[..], b"after heal");

    // Reconnection, not eviction: neither side ever declared the other dead.
    assert!(!a.peer_is_dead(1), "transient drop must not kill peer 1");
    assert!(!b.peer_is_dead(0), "transient drop must not kill peer 0");
    assert!(
        counter("net.reconnect.healed") > healed_before,
        "a heal must be counted in net.reconnect.healed"
    );
}

#[test]
fn epoch_fence_discards_stale_frames_across_reconnect() {
    let (a, b) = TcpTransport::pair_loopback_with(1, fast_cfg()).unwrap();
    let ring = Arc::new(RingTopology::new(round_robin_layout(1, 2, 1), RingOrder::ById, 1));

    // Attempt 0 leaves a frame in flight, then the link is severed — the
    // gang-retry scenario, with a reconnect in the middle.
    let stale = RingComm::new(a.clone() as Arc<dyn Transport>, ring.clone(), 0).with_epoch(7, 0);
    stale.send_to_rank(1, 0, ByteBuf::from_static(b"stale attempt-0 segment")).unwrap();
    a.kill_connection(1).unwrap();

    // Attempt 1 runs over the healed socket. The receiver's fence must skip
    // the attempt-0 frame (redelivered from the out-queue after the heal)
    // and hand over only the fresh payload.
    let fresh = RingComm::new(a.clone() as Arc<dyn Transport>, ring.clone(), 0).with_epoch(7, 1);
    fresh.send_to_rank(1, 0, ByteBuf::from_static(b"fresh attempt-1 segment")).unwrap();

    let rx = RingComm::new(b.clone() as Arc<dyn Transport>, ring, 1).with_epoch(7, 1);
    let got = rx.recv_from_rank_timeout(0, 0, Duration::from_secs(10)).unwrap();
    assert_eq!(
        &got[..],
        b"fresh attempt-1 segment",
        "the epoch fence must discard the pre-reconnect attempt-0 frame"
    );
}

#[test]
fn silent_peer_is_suspected_and_declared_lost() {
    // A raw socket that never speaks models a SIGSTOP'd executor: the
    // connection stays open but heartbeats go unanswered. Without
    // reconnection armed, suspicion is terminal.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _mute = TcpStream::connect(addr).unwrap();
    let (accepted, _) = listener.accept().unwrap();

    let mut cfg = TcpConfig::default();
    cfg.health.interval = Duration::from_millis(10);
    cfg.health.suspicion = Duration::from_millis(80);
    let suspicions_before = counter("net.heartbeat.suspicions");
    let t = TcpTransport::new_with(0, 2, 1, vec![(1, accepted)], cfg, None).unwrap();

    let err = t
        .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_secs(5))
        .expect_err("a mute peer must be detected, not waited on");
    match err {
        NetError::PeerLost { rank, .. } => assert_eq!(rank, 1),
        other => panic!("want PeerLost for the silent peer, got {other:?}"),
    }
    assert!(t.peer_is_dead(1));
    assert!(
        counter("net.heartbeat.suspicions") > suspicions_before,
        "the detection must be counted in net.heartbeat.suspicions"
    );
}

#[test]
fn spent_reconnect_budget_is_typed_peer_lost() {
    let mut cfg = fast_cfg();
    cfg.health.interval = Duration::from_millis(20);
    cfg.health.suspicion = Duration::from_millis(200);
    cfg.reconnect = ReconnectConfig {
        max_rounds: 3,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(40),
        accept_window: Duration::from_millis(100),
    };
    let (a, b) = TcpTransport::pair_loopback_with(1, cfg).unwrap();
    let exhausted_before = counter("net.reconnect.exhausted");

    // Rank 1 vanishes for good — transport, socket, and listener all gone,
    // so rank 0 (the accepting side of this pair) burns accept windows until
    // the budget is spent.
    drop(b);

    let err = a
        .recv_timeout(ExecutorId(0), ExecutorId(1), 0, Duration::from_secs(10))
        .expect_err("a permanently-dead peer must exhaust the budget");
    match &err {
        NetError::PeerLost { rank, detail } => {
            assert_eq!(*rank, 1);
            assert!(
                detail.contains("budget exhausted"),
                "detail should name the spent budget, got: {detail}"
            );
        }
        other => panic!("want PeerLost after budget exhaustion, got {other:?}"),
    }
    assert!(a.peer_is_dead(1));
    assert!(matches!(a.peer_error(1), Some(NetError::PeerLost { .. })));
    assert_eq!(a.dead_peers(), vec![1]);
    assert!(
        counter("net.reconnect.exhausted") > exhausted_before,
        "exhaustion must be counted in net.reconnect.exhausted"
    );
}
