//! Property suite for the TCP wire frame codec (DESIGN.md §5g).
//!
//! The framing layer sits between a byte stream with no message boundaries
//! and a transport that promises whole, attributed, checksummed frames. The
//! properties pinned here are exactly its §5g obligations:
//!
//! * **roundtrip** — any `(from, channel, payload)` encoded and pushed
//!   through [`FrameReader`] in arbitrary chunk sizes (modelling TCP's
//!   freedom to fragment) decodes to the same frame, and multiple
//!   back-to-back frames come out in order.
//! * **socketpair roundtrip** — the same over a *real* loopback TCP
//!   connection via the blocking [`write_frame`]/[`read_frame`] helpers,
//!   with the writer flushing in odd-sized bursts.
//! * **truncation is never an error** — a prefix of a valid frame yields
//!   `Ok(None)` ("need more bytes"), never a panic, never a bogus frame:
//!   a reader must not punish the wire for being mid-delivery.
//! * **corruption is a typed error** — flipping any byte of the header or
//!   payload yields [`NetError::Codec`] (or, for length-field bits, a
//!   benign "need more bytes" — the checksum catches the rest when they
//!   arrive), never a panic, never a silently wrong frame.
//!
//! The heartbeat layer (§5h) rides the same framing on a reserved channel,
//! so its obligations are pinned here too: beats roundtrip for any
//! `(seq, stamp)`, malformed beats are typed [`NetError::Codec`], and the
//! reserved channel ids can never collide with a data channel.

use std::io::Write;
use std::net::{TcpListener, TcpStream};

use sparker_net::error::NetError;
use sparker_net::tcp::frame::{
    encode_pooled, read_frame, write_frame, FrameReader, CONTROL_CHANNEL, HEADER_LEN,
    HEARTBEAT_CHANNEL, MAGIC,
};
use sparker_net::tcp::health::{Beat, BEAT_LEN};
use sparker_net::tcp::TcpTransport;
use sparker_net::transport::Transport;
use sparker_net::{ByteBuf, ExecutorId, FramePool};
use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, PropError, Source};

fn cfg() -> Config {
    Config::with_cases(32)
}

/// An arbitrary frame: rank/channel ids plus a payload of 0..2048 bytes.
fn arb_frame(src: &mut Source) -> (u32, u32, Vec<u8>) {
    let from = src.u32_any();
    let channel = src.u32_any();
    let payload = src.vec_of(0..2048, |s| s.u8_any());
    (from, channel, payload)
}

/// Feeds `bytes` to `reader` in arbitrary-sized chunks, draining decoded
/// frames after each chunk (as the IO thread does after each `read`).
fn feed_chunked(
    reader: &mut FrameReader,
    pool: &FramePool,
    bytes: &[u8],
    src: &mut Source,
) -> Result<Vec<(u32, u32, Vec<u8>)>, PropError> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < bytes.len() {
        let step = src.usize_in(1..64).min(bytes.len() - off);
        reader.extend(&bytes[off..off + step]);
        off += step;
        while let Some(f) = reader
            .next_frame(pool)
            .map_err(|e| PropError::new(format!("decode failed mid-stream: {e}")))?
        {
            out.push((f.from, f.channel, f.payload.to_vec()));
        }
    }
    Ok(out)
}

#[test]
fn chunked_reassembly_roundtrips_any_frame_train() {
    check(&cfg(), |src| {
        let pool = FramePool::new();
        let frames: Vec<(u32, u32, Vec<u8>)> =
            src.vec_of(1..5, |s| arb_frame(s));
        let mut wire = Vec::new();
        for (from, channel, payload) in &frames {
            let f = encode_pooled(&pool, *from, *channel, payload)
                .map_err(|e| PropError::new(e.to_string()))?;
            wire.extend_from_slice(&f);
        }

        let mut reader = FrameReader::new();
        let got = feed_chunked(&mut reader, &pool, &wire, src)?;
        tk_assert!(!reader.has_partial(), "stream fully consumed, nothing pending");
        tk_assert_eq!(got.len(), frames.len(), "every frame must come back");
        for ((gf, gc, gp), (ef, ec, ep)) in got.iter().zip(&frames) {
            tk_assert_eq!(gf, ef, "from survives reassembly");
            tk_assert_eq!(gc, ec, "channel survives reassembly");
            tk_assert_eq!(gp, ep, "payload survives reassembly");
        }
        Ok(())
    });
}

#[test]
fn socketpair_roundtrips_with_partial_writes() {
    check(&cfg(), |src| {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut tx = TcpStream::connect(addr).expect("connect");
        let (rx, _) = listener.accept().expect("accept");
        let mut rx = rx;

        let pool = FramePool::new();
        let frames: Vec<(u32, u32, Vec<u8>)> = src.vec_of(1..4, |s| arb_frame(s));

        // Half the cases use the blocking writer; the other half hand-feed
        // the encoded bytes in odd-sized bursts so the reader must reassemble
        // genuinely partial TCP segments.
        if src.bool_any() {
            for (from, channel, payload) in &frames {
                write_frame(&mut tx, &pool, *from, *channel, payload)
                    .map_err(|e| PropError::new(e.to_string()))?;
            }
        } else {
            let mut wire = Vec::new();
            for (from, channel, payload) in &frames {
                let f = encode_pooled(&pool, *from, *channel, payload)
                    .map_err(|e| PropError::new(e.to_string()))?;
                wire.extend_from_slice(&f);
            }
            let mut off = 0;
            while off < wire.len() {
                let step = src.usize_in(1..97).min(wire.len() - off);
                tx.write_all(&wire[off..off + step]).expect("burst write");
                tx.flush().expect("flush");
                off += step;
            }
        }

        for (from, channel, payload) in &frames {
            let got = read_frame(&mut rx, &pool).map_err(|e| PropError::new(e.to_string()))?;
            tk_assert_eq!(&got.from, from, "from survives the socket");
            tk_assert_eq!(&got.channel, channel, "channel survives the socket");
            tk_assert_eq!(&got.payload.to_vec(), payload, "payload survives the socket");
        }
        Ok(())
    });
}

#[test]
fn truncated_frames_wait_for_more_bytes() {
    check(&cfg(), |src| {
        let pool = FramePool::new();
        let (from, channel, payload) = arb_frame(src);
        let full = encode_pooled(&pool, from, channel, &payload)
            .map_err(|e| PropError::new(e.to_string()))?;
        let cut = src.usize_in(0..full.len() as usize);

        let mut reader = FrameReader::new();
        reader.extend(&full[..cut]);
        let early = reader
            .next_frame(&pool)
            .map_err(|e| PropError::new(format!("truncation must not error: {e}")))?;
        tk_assert!(early.is_none(), "no frame may decode from a strict prefix");
        tk_assert_eq!(reader.has_partial(), cut > 0, "prefix bytes stay buffered");

        // Delivering the remainder completes the frame intact.
        reader.extend(&full[cut..]);
        let f = reader
            .next_frame(&pool)
            .map_err(|e| PropError::new(e.to_string()))?
            .ok_or_else(|| PropError::new("completed frame must decode"))?;
        tk_assert_eq!(f.from, from, "from intact after reassembly");
        tk_assert_eq!(f.payload.to_vec(), payload, "payload intact after reassembly");
        Ok(())
    });
}

#[test]
fn corrupted_frames_fail_typed_never_silently() {
    check(&cfg(), |src| {
        let pool = FramePool::new();
        let (from, channel, payload) = arb_frame(src);
        let full = encode_pooled(&pool, from, channel, &payload)
            .map_err(|e| PropError::new(e.to_string()))?;

        let mut bytes = full.to_vec();
        let victim = src.usize_in(0..bytes.len() as usize);
        let mut flip = src.u8_any();
        if flip == 0 {
            flip = 0xFF; // XOR with 0 would leave the frame valid
        }
        bytes[victim] ^= flip;

        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        match reader.next_frame(&pool) {
            // The common outcome: magic, checksum, or structure check fires.
            Err(NetError::Codec(_)) => {}
            // A flip inside the length field can only make the frame claim to
            // be longer than what arrived — that legitimately reads as "still
            // incomplete". (Shorter claims misalign the magic of the byte
            // stream's next scan and fail as Codec above.)
            Ok(None) if (4..8).contains(&victim) => {}
            Err(e) => {
                return Err(PropError::new(format!(
                    "corruption must surface as NetError::Codec, got {e:?}"
                )));
            }
            Ok(f) => {
                return Err(PropError::new(format!(
                    "corrupted byte {victim} decoded as {:?}",
                    f.map(|d| (d.from, d.channel, d.payload.len()))
                )));
            }
        }
        Ok(())
    });
}

#[test]
fn header_constants_match_design_doc() {
    // §5g pins these; the byte-exact example frame is checked in the unit
    // tests of `sparker_net::tcp::frame`.
    assert_eq!(MAGIC.to_le_bytes(), *b"TKPS"); // "SPKT" read back little-endian
    assert_eq!(HEADER_LEN, 24);
}

#[test]
fn heartbeat_beats_roundtrip_any_seq_stamp() {
    check(&cfg(), |src| {
        let (seq, stamp) = (src.u64_any(), src.u64_any());
        let beat =
            if src.bool_any() { Beat::Ping { seq, stamp } } else { Beat::Pong { seq, stamp } };
        let wire = beat.encode();
        tk_assert_eq!(wire.len(), BEAT_LEN, "beats are fixed-size");
        let back = Beat::decode(&wire).map_err(|e| PropError::new(e.to_string()))?;
        tk_assert_eq!(back, beat, "beat survives encode/decode");
        Ok(())
    });
}

#[test]
fn malformed_beats_fail_typed() {
    check(&cfg(), |src| {
        let beat = Beat::Ping { seq: src.u64_any(), stamp: src.u64_any() };
        let wire = beat.encode();

        // Any length other than BEAT_LEN is a typed codec error: truncations
        // and over-long payloads alike.
        let cut = src.usize_in(0..BEAT_LEN as usize);
        tk_assert!(
            matches!(Beat::decode(&wire[..cut]), Err(NetError::Codec(_))),
            "truncated beat must fail typed"
        );
        let mut long = wire.to_vec();
        long.extend_from_slice(&[0; 3]);
        tk_assert!(
            matches!(Beat::decode(&long), Err(NetError::Codec(_))),
            "over-long beat must fail typed"
        );

        // An unknown tag byte is rejected; the seq/stamp bytes are opaque
        // u64s, so only the tag can make a right-sized beat malformed.
        let mut bad = wire;
        bad[0] = src.u8_any();
        match Beat::decode(&bad) {
            Ok(got) => tk_assert!(
                matches!(got, Beat::Ping { .. } | Beat::Pong { .. }) && bad[0] <= 2,
                "only the two real tags may decode"
            ),
            Err(NetError::Codec(_)) => {}
            Err(e) => {
                return Err(PropError::new(format!("bad tag must be Codec, got {e:?}")));
            }
        }
        Ok(())
    });
}

#[test]
fn reserved_channels_never_collide_with_data_channels() {
    // The control plane and the heartbeat plane each own a reserved channel
    // id at the top of the u32 space; they must stay distinct from each
    // other...
    assert_ne!(CONTROL_CHANNEL, HEARTBEAT_CHANNEL);
    assert_eq!(CONTROL_CHANNEL, u32::MAX);
    assert_eq!(HEARTBEAT_CHANNEL, u32::MAX - 1);

    // ...and unreachable from user code: a transport rejects sends and
    // receives on any channel at or beyond its configured width, so no data
    // frame can ever be addressed to a reserved id.
    let (a, b) = TcpTransport::pair_loopback(2).unwrap();
    for reserved in [CONTROL_CHANNEL as usize, HEARTBEAT_CHANNEL as usize] {
        let sent = a.send(ExecutorId(0), ExecutorId(1), reserved, ByteBuf::from_static(b"x"));
        assert!(
            matches!(sent, Err(NetError::InvalidAddress(_))),
            "send on reserved channel {reserved} must be rejected, got {sent:?}"
        );
        let got = b.recv_timeout(
            ExecutorId(1),
            ExecutorId(0),
            reserved,
            std::time::Duration::from_millis(50),
        );
        assert!(
            matches!(got, Err(NetError::InvalidAddress(_))),
            "recv on reserved channel {reserved} must be rejected, got {got:?}"
        );
    }
}
