//! Integration: the allreduce extension — reduced values stay resident on
//! executors, the driver receives exactly one copy, and results match
//! split aggregation bit-for-bit.

use sparker::prelude::*;

fn dataset(cluster: &LocalCluster) -> sparker::engine::dataset::Dataset<Vec<f64>> {
    let dim = 256;
    let data = cluster
        .generate(8, move |p| vec![vec![(p * p) as f64; dim]; 1])
        .cache();
    data.count().unwrap();
    data
}

fn seq(mut acc: F64Array, v: &Vec<f64>) -> F64Array {
    for (a, x) in acc.0.iter_mut().zip(v) {
        *a += *x;
    }
    acc
}

#[test]
fn allreduce_matches_split_aggregate() {
    let cluster = LocalCluster::local(4, 2);
    let data = dataset(&cluster);
    let dim = 256;
    let (split_result, _) = data
        .split_aggregate(
            F64Array(vec![0.0; dim]),
            seq,
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            SplitAggOpts::default(),
        )
        .unwrap();
    let out = data
        .allreduce_aggregate(
            F64Array(vec![0.0; dim]),
            seq,
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            None,
        )
        .unwrap();
    assert_eq!(out.value.0, sparker::dense::to_vec(split_result));
}

#[test]
fn every_executor_holds_the_reduced_value() {
    let cluster = LocalCluster::local(3, 2);
    let data = dataset(&cluster);
    let dim = 256;
    let out = data
        .allreduce_aggregate(
            F64Array(vec![0.0; dim]),
            seq,
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            Some(2),
        )
        .unwrap();
    for e in 0..3u32 {
        // The resident copy has the segment type V (here SumSegment).
        let copy = cluster
            .executor_objects(sparker::net::topology::ExecutorId(e))
            .with(executor_copy_slot(out.op), |v: &SumSegment| v.0.clone())
            .expect("resident copy present");
        assert_eq!(copy, out.value.0, "executor {e}");
    }
    // Driver traffic: exactly one aggregator.
    let payload = (dim * 8) as u64;
    assert!(out.metrics.bytes_to_driver >= payload && out.metrics.bytes_to_driver < payload + 64);
}

#[test]
fn allreduce_survives_ring_stage_fault() {
    let cluster = LocalCluster::local(3, 2);
    // Op ids are deterministic: count() uses none, so the allreduce is op 1.
    cluster.fault_plan().fail_once("allreduce-ring-op1", 2);
    let data = dataset(&cluster);
    let dim = 256;
    let out = data
        .allreduce_aggregate(
            F64Array(vec![0.0; dim]),
            seq,
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            Some(1),
        )
        .unwrap();
    let want: f64 = (0..8).map(|p| (p * p) as f64).sum();
    assert!(out.value.0.iter().all(|&v| v == want));
}
