//! Property suite pinning the frame-pool safety contract: encoding into a
//! recycled buffer is indistinguishable from encoding into a fresh one.
//!
//! For every `Payload` impl in the workspace, the pooled encode path
//! (`to_frame_pooled`) must produce frames bit-identical to the unpooled
//! path even when the pool hands back a buffer previously filled with
//! garbage — including a buffer that last held a *corrupted* collective
//! frame (the recv path recycles those after the checksum rejects them).
//! If recycling ever leaked stale bytes into a frame, this suite fails.

use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, Source};

use sparker::collectives::composite::CompositeAgg;
use sparker::ml::aggregator::{DenseOrSparse, SparseSegment};
use sparker::ml::LabeledPoint;
use sparker::prelude::*;
use sparker_net::{epoch, ByteBuf, FramePool};

fn cfg() -> Config {
    Config::with_cases(24)
}

/// Seeds `pool` with a garbage-filled buffer sized so the next pooled
/// encode of a `size_hint()`-byte value draws exactly this buffer.
fn seed_garbage(pool: &FramePool, size_hint: usize, src: &mut Source) {
    let mut buf = pool.acquire(size_hint.max(1));
    let cap = buf.capacity();
    for _ in 0..cap {
        buf.push(src.u8_any());
    }
    pool.recycle_vec(buf);
}

/// The core property: pooled encode over a garbage-seeded pool is
/// bit-identical to a fresh encode, and pooled decode round-trips.
fn pooled_exact<T: Payload + PartialEq + std::fmt::Debug>(
    v: &T,
    src: &mut Source,
) -> Result<(), sparker_testkit::PropError> {
    let pool = FramePool::new();
    seed_garbage(&pool, v.size_hint(), src);

    let fresh = v.to_frame();
    let pooled = v.to_frame_pooled(&pool);
    tk_assert_eq!(
        &pooled[..],
        &fresh[..],
        "pooled encode must be bit-identical to fresh encode"
    );
    if v.size_hint() > 0 {
        tk_assert!(pool.stats().hits >= 1, "encode must have reused the seeded buffer");
    }

    // Decode through the pool (which recycles the frame), then encode again
    // from the same pool: the twice-recycled buffer must still be clean.
    let back = T::from_frame_pooled(pooled, &pool)
        .map_err(|e| sparker_testkit::PropError::new(e.to_string()))?;
    tk_assert_eq!(&back, v, "pooled frame must decode back to the same value");
    let again = v.to_frame_pooled(&pool);
    tk_assert_eq!(&again[..], &fresh[..], "re-reused buffer must stay clean");
    Ok(())
}

fn finite_f64(src: &mut Source) -> f64 {
    src.f64_in(-1.0e9..1.0e9)
}

fn arb_sparse(src: &mut Source, max_len: usize) -> SparseSegment {
    let len = src.usize_in(0..max_len);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for i in 0..len {
        if src.bool_any() {
            indices.push(i as u32);
            values.push(finite_f64(src));
        }
    }
    SparseSegment::new(len, indices, values)
}

#[test]
fn primitives_and_containers_reuse_cleanly() {
    check(&cfg(), |src| {
        pooled_exact(&src.u64_any(), src)?;
        pooled_exact(&src.u32_any(), src)?;
        pooled_exact(&src.i64_any(), src)?;
        pooled_exact(&finite_f64(src), src)?;
        pooled_exact(&src.string_of(0..64), src)?;
        pooled_exact(&src.vec_of(0..32, |s| s.u64_any()), src)?;
        pooled_exact(&(src.u32_any(), src.string_of(0..16)), src)?;
        pooled_exact(&F64Array(src.vec_of(0..64, finite_f64)), src)?;
        Ok(())
    });
}

#[test]
fn segment_types_reuse_cleanly() {
    check(&cfg(), |src| {
        pooled_exact(&SumSegment(src.vec_of(0..64, finite_f64)), src)?;
        pooled_exact(&U64SumSegment(src.vec_of(0..64, |s| s.u64_any())), src)?;
        pooled_exact(&arb_sparse(src, 80), src)?;
        let dense: Vec<f64> =
            src.vec_of(0..80, |s| if s.bool_any() { finite_f64(s) } else { 0.0 });
        let threshold = src.choose(&[0.0, 0.25, 0.5, 1.0, 2.0]);
        pooled_exact(&DenseOrSparse::from_dense(dense, threshold), src)?;
        let fields = src.vec_of(0..4, |s| s.vec_of(0..16, finite_f64));
        let scalars = src.vec_of(0..4, finite_f64);
        pooled_exact(&CompositeAgg::from_parts(fields, scalars), src)?;
        let nnz = src.usize_in(0..16);
        let indices: Vec<u32> = (0..nnz as u32).collect();
        let values = src.vec_of(nnz..nnz + 1, finite_f64);
        pooled_exact(&LabeledPoint::new(1.0, indices, values), src)?;
        Ok(())
    });
}

#[test]
fn buffer_that_held_a_corrupted_frame_reuses_cleanly() {
    // The recv path recycles frames whose checksum failed — the most
    // adversarial previous tenant a pooled buffer can have. Encoding out of
    // that buffer must still be bit-identical to a fresh encode.
    check(&cfg(), |src| {
        let pool = FramePool::new();
        let value = U64SumSegment(src.vec_of(1..64, |s| s.u64_any()));

        // Build a corrupted collective frame and push its allocation (via
        // the rejected-decode path) into the pool.
        let payload = value.to_frame();
        let wrapped = epoch::wrap(7, 1, &payload);
        let mut bytes = wrapped.to_vec();
        let flip = src.usize_in(0..bytes.len());
        bytes[flip] ^= 0x01;
        let corrupted = ByteBuf::from(bytes);
        tk_assert!(epoch::unwrap(corrupted.clone()).is_err(), "flip must be detected");
        tk_assert!(pool.recycle_frame(corrupted), "sole-owned frame must recycle");

        let fresh = value.to_frame();
        let pooled = value.to_frame_pooled(&pool);
        tk_assert_eq!(
            &pooled[..],
            &fresh[..],
            "buffer that held a corrupted frame must encode cleanly"
        );
        let back = U64SumSegment::from_frame_pooled(pooled, &pool)
            .map_err(|e| sparker_testkit::PropError::new(e.to_string()))?;
        tk_assert_eq!(back, value);
        Ok(())
    });
}

#[test]
fn pool_disabled_still_round_trips() {
    // The A/B baseline: a disabled pool must change allocation behaviour
    // only, never bytes.
    check(&cfg(), |src| {
        let pool = FramePool::disabled();
        let value = SumSegment(src.vec_of(0..64, finite_f64));
        let fresh = value.to_frame();
        let pooled = value.to_frame_pooled(&pool);
        tk_assert_eq!(&pooled[..], &fresh[..]);
        tk_assert_eq!(pool.stats().hits, 0, "disabled pool must never hit");
        Ok(())
    });
}
