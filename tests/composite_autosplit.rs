//! Integration: derived split aggregation (the paper's §6 future-work
//! direction) — a Figure-7-shaped `Agg { sum1, sum2 }` aggregator runs
//! through the full split-aggregation pipeline with **no hand-written
//! splitOp/concatOp**; both callbacks come from [`CompositeLayout`].

use sparker::collectives::composite::{CompositeAgg, CompositeLayout};
use sparker::collectives::segment::SumSegment;
use sparker::prelude::*;

/// Figure 7's example: two arrays summed element-wise per sample, plus a
/// loss scalar and a count.
fn run(mode: SplitAggOpts) -> CompositeAgg {
    let cluster = LocalCluster::local(3, 2);
    let dim1 = 50;
    let dim2 = 30;
    let layout = CompositeLayout::new(vec![dim1, dim2], 2);
    let data = cluster
        .generate(6, |p| vec![(p + 1) as u64; 4])
        .cache();
    data.count().unwrap();

    let zero = CompositeAgg::zeros(&[dim1, dim2], 2);
    let split_layout = layout.clone();
    let concat_layout = layout.clone();
    let (seg, _) = data
        .split_aggregate(
            zero,
            move |mut acc: CompositeAgg, x: &u64| {
                let v = *x as f64;
                for a in acc.field_mut(0) {
                    *a += v;
                }
                for a in acc.field_mut(1) {
                    *a += 2.0 * v;
                }
                *acc.scalar_mut(0) += v * v; // "loss"
                *acc.scalar_mut(1) += 1.0; // count
                acc
            },
            |a: &mut CompositeAgg, b: CompositeAgg| a.merge(b),
            move |u: &CompositeAgg, i, n| split_layout.split(u, i, n),
            |a: &mut SumSegment, b: SumSegment| {
                for (x, y) in a.0.iter_mut().zip(b.0) {
                    *x += y;
                }
            },
            |segs: Vec<SumSegment>| SumSegment(segs.into_iter().flat_map(|s| s.0).collect()),
            mode,
        )
        .unwrap();
    // The concatenated flat vector reassembles into the composite.
    concat_layout
        .concat(vec![seg])
        .expect("flat result matches layout")
}

#[test]
fn composite_aggregator_splits_without_user_split_code() {
    let agg = run(SplitAggOpts::default());
    // 6 partitions x 4 items of value p+1: sum of values = 4 * (1+..+6) = 84.
    let total = 84.0;
    assert!(agg.field(0).iter().all(|&v| v == total));
    assert!(agg.field(1).iter().all(|&v| v == 2.0 * total));
    // loss = sum of v^2 = 4 * (1+4+9+16+25+36) = 364; count = 24.
    assert_eq!(agg.scalar(0), 364.0);
    assert_eq!(agg.scalar(1), 24.0);
}

#[test]
fn composite_results_independent_of_parallelism_and_algorithm() {
    let baseline = run(SplitAggOpts::default());
    for parallelism in [1usize, 3, 8] {
        let got = run(SplitAggOpts { parallelism: Some(parallelism), ..Default::default() });
        assert_eq!(got, baseline, "P={parallelism}");
    }
    let halving = run(SplitAggOpts { algorithm: RsAlgorithm::Halving, ..Default::default() });
    assert_eq!(halving, baseline);
}
