//! Cross-crate integration: fault injection and the two recovery paths —
//! per-task retry for ordinary stages, whole-stage resubmission for
//! reduced-result (IMM) stages (paper §3.2).

use sparker::prelude::*;

fn sum_with_faults(cluster: &LocalCluster, strategy: &str) -> (f64, u32) {
    let data = cluster.generate(6, |p| vec![(p + 1) as u64]).cache();
    data.count().unwrap();
    let seq = |acc: f64, v: &u64| acc + *v as f64;
    match strategy {
        "tree" | "tree+imm" => {
            let (r, m) = data
                .tree_aggregate(
                    0.0f64,
                    seq,
                    |a, b| a + b,
                    TreeAggOpts { depth: 2, imm: strategy == "tree+imm" },
                )
                .unwrap();
            (r, m.task_attempts)
        }
        _ => {
            let (r, m) = data
                .split_aggregate(
                    0.0f64,
                    seq,
                    |a, b| *a += b,
                    |u, i, _n| if i == 0 { *u } else { 0.0 },
                    |a, b| *a += b,
                    |segs| segs.into_iter().sum(),
                    SplitAggOpts::default(),
                )
                .unwrap();
            (r, m.task_attempts)
        }
    }
}

const EXPECTED: f64 = 21.0; // 1+2+...+6

#[test]
fn tree_compute_fault_retries_single_task() {
    let cluster = LocalCluster::local(3, 2);
    // Engine op ids are deterministic per cluster: the first aggregation's
    // compute stage is op 1 (count() runs no aggregation op).
    cluster.fault_plan().fail_once("tree-compute-op1", 3);
    let (sum, attempts) = sum_with_faults(&cluster, "tree");
    assert_eq!(sum, EXPECTED);
    // 6 partitions, scale 3 => one shuffle round (6 -> 2): 6 compute +
    // 1 retry + 5 shuffle tasks (3 senders + 2 receivers) + 2 final.
    assert_eq!(attempts, 14);
}

#[test]
fn imm_compute_fault_resubmits_stage_without_double_count() {
    let cluster = LocalCluster::local(3, 2);
    cluster.fault_plan().fail_once("tree-compute-op1", 0);
    let (sum, attempts) = sum_with_faults(&cluster, "tree+imm");
    assert_eq!(sum, EXPECTED, "stage resubmission must not double-merge");
    assert!(attempts >= 12, "all six compute tasks rerun: {attempts}");
}

#[test]
fn split_imm_fault_resubmits_and_ring_still_completes() {
    let cluster = LocalCluster::local(3, 2);
    cluster.fault_plan().fail_once("split-imm-op1", 5);
    let (sum, attempts) = sum_with_faults(&cluster, "split");
    assert_eq!(sum, EXPECTED);
    assert!(attempts > 6 + 3, "imm stage resubmitted: {attempts}");
}

#[test]
fn ring_stage_fault_retries_that_executor_task() {
    let cluster = LocalCluster::local(3, 2);
    cluster.fault_plan().fail_once("split-ring-op1", 1);
    let (sum, _) = sum_with_faults(&cluster, "split");
    assert_eq!(sum, EXPECTED, "retried ring task must rejoin the ring");
}

#[test]
fn repeated_faults_exhaust_retry_budget() {
    let cluster = LocalCluster::local(2, 1);
    for attempt in 0..8 {
        cluster.fault_plan().fail_attempt("tree-compute-op1", 0, attempt);
    }
    let data = cluster.generate(2, |p| vec![p as u64]).cache();
    data.count().unwrap();
    let err = data
        .tree_aggregate(0u64, |a, v| a + *v, |a, b| a + b, TreeAggOpts::default())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("failed after"), "{msg}");
}

#[test]
fn multiple_faults_across_stages_still_converge() {
    let cluster = LocalCluster::local(3, 2);
    cluster.fault_plan().fail_once("split-imm-op1", 0);
    cluster.fault_plan().fail_once("split-ring-op1", 2);
    let (sum, _) = sum_with_faults(&cluster, "split");
    assert_eq!(sum, EXPECTED);
}
