//! Property tests on the scheduler's core invariants (DESIGN.md §5i):
//!
//! * any interleaving of concurrently submitted jobs, under any policy,
//!   produces results bit-identical to the serial oracle — scheduling may
//!   reorder jobs, never change their math;
//! * live jobs always hold distinct, in-range, nonzero epoch namespaces,
//!   and the bounded queue rejects overflow with the typed error;
//! * the namespace fold into the attempt word is injective and
//!   round-trips.

use std::sync::{Arc, Condvar, Mutex};

use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, Source};

use sparker_net::epoch;
use sparker_sched::{
    AggJob, Backend, EngineBackend, FairShare, Fifo, JobCtx, JobRequest, Policy, Priority,
    SchedConfig, SchedError, Scheduler, StrictPriority,
};

fn cfg() -> Config {
    Config::with_cases(6)
}

fn arb_policy(src: &mut Source) -> Box<dyn Policy> {
    match src.usize_in(0..3) {
        0 => Box::new(Fifo),
        1 => Box::new(StrictPriority),
        _ => Box::new(FairShare::new(src.u64_in(1..4))),
    }
}

fn arb_priority(src: &mut Source) -> Priority {
    match src.usize_in(0..3) {
        0 => Priority::Low,
        1 => Priority::Normal,
        _ => Priority::High,
    }
}

#[test]
fn any_interleaving_matches_serial_oracle_bit_exact() {
    check(&cfg(), |src| {
        let lanes = src.usize_in(1..3);
        let policy = arb_policy(src);
        let jobs_per_client = src.usize_in(2..7);
        let jobs: Vec<Vec<(AggJob, Priority, u64)>> = (0..2)
            .map(|client| {
                (0..jobs_per_client)
                    .map(|i| {
                        (
                            AggJob {
                                seed: src.u64_any() ^ ((client as u64) << 48 | i as u64),
                                dim: src.usize_in(1..40),
                                parts: src.usize_in(1..5),
                            },
                            arb_priority(src),
                            src.u64_in(1..5),
                        )
                    })
                    .collect()
            })
            .collect();
        let sched =
            Scheduler::new(EngineBackend::new(lanes, 2, 1), policy, SchedConfig::default());
        // Two submitter threads race their batches through the queue; the
        // policy and lane count decide the interleaving.
        let results: Vec<Vec<(AggJob, Vec<f64>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .enumerate()
                .map(|(client, batch)| {
                    let sched = &sched;
                    s.spawn(move || {
                        let submitted: Vec<_> = batch
                            .iter()
                            .map(|&(job, priority, cost)| {
                                let req = JobRequest { client: client as u32, priority, cost, job };
                                (job, sched.submit(req).expect("admitted"))
                            })
                            .collect();
                        submitted
                            .into_iter()
                            .map(|(job, h)| (job, h.wait().expect("job runs")))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("submitter")).collect()
        });
        for per_client in results {
            for (job, got) in per_client {
                let want = EngineBackend::oracle(&job);
                tk_assert_eq!(
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "scheduled result diverged from serial oracle for {job:?}"
                );
            }
        }
        Ok(())
    });
}

/// Holds dispatched jobs until opened, pinning an arbitrary number of jobs
/// in the live (pending + in-flight) state.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

#[derive(Clone)]
struct GateBackend(Arc<Gate>);

impl Backend for GateBackend {
    type Job = u64;
    type Output = u64;

    fn lanes(&self) -> usize {
        1
    }

    fn run(&self, _lane: usize, _ctx: JobCtx, job: &u64) -> Result<u64, String> {
        let mut open = self.0.open.lock().unwrap();
        while !*open {
            open = self.0.cv.wait(open).unwrap();
        }
        Ok(*job)
    }
}

#[test]
fn live_jobs_never_share_a_namespace_and_overflow_rejects_typed() {
    check(&cfg(), |src| {
        let capacity = src.usize_in(2..9);
        let gate = Arc::new(Gate { open: Mutex::new(false), cv: Condvar::new() });
        let sched = Scheduler::new(
            GateBackend(gate.clone()),
            arb_policy(src),
            SchedConfig { capacity, ..SchedConfig::default() },
        );
        // Fill to the admission bound: 1 dispatched (gated) + `capacity`
        // pending. Submission order is arbitrary priority/cost.
        let mut handles = Vec::new();
        let mut admitted = 0u64;
        loop {
            let req = JobRequest {
                client: src.usize_in(0..3) as u32,
                priority: arb_priority(src),
                cost: src.u64_in(1..4),
                job: admitted,
            };
            match sched.submit(req) {
                Ok(h) => {
                    handles.push((admitted, h));
                    admitted += 1;
                }
                Err(SchedError::QueueFull { capacity: c }) => {
                    tk_assert_eq!(c, capacity, "typed rejection names the bound");
                    break;
                }
                Err(e) => return Err(sparker_testkit::PropError::new(format!("expected QueueFull, got {e}"))),
            }
            tk_assert!(
                (admitted as usize) <= capacity + 1,
                "admission exceeded capacity + one in-flight"
            );
        }
        tk_assert!(admitted >= capacity as u64, "queue admits at least its capacity");
        // Every live job holds a distinct, nonzero, in-range namespace.
        let ns = sched.active_namespaces();
        tk_assert_eq!(ns.len(), handles.len(), "one namespace per live job");
        for w in ns.windows(2) {
            tk_assert!(w[0] != w[1], "live namespaces collide: {ns:?}");
        }
        for n in &ns {
            tk_assert!(*n >= 1 && *n < epoch::NS_COUNT, "namespace {n} out of range");
        }
        for (_, h) in &handles {
            tk_assert!(h.epoch_ns >= 1 && h.epoch_ns < epoch::NS_COUNT);
        }
        // Release: everything completes with its own value, and the
        // namespaces drain back out.
        *gate.open.lock().unwrap() = true;
        gate.cv.notify_all();
        for (job, h) in handles {
            tk_assert_eq!(h.wait().expect("job runs"), job);
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !sched.active_namespaces().is_empty() {
            tk_assert!(std::time::Instant::now() < deadline, "namespaces never released");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        Ok(())
    });
}

#[test]
fn namespace_fold_is_injective_and_round_trips() {
    check(&Config::with_cases(64), |src| {
        let ns_a = src.u64_in(0..epoch::NS_COUNT as u64) as u32;
        let ns_b = src.u64_in(0..epoch::NS_COUNT as u64) as u32;
        let at_a = src.u64_in(0..epoch::ATTEMPT_MASK as u64 + 1) as u32;
        let at_b = src.u64_in(0..epoch::ATTEMPT_MASK as u64 + 1) as u32;
        let fold_a = epoch::namespaced(ns_a, at_a);
        let fold_b = epoch::namespaced(ns_b, at_b);
        tk_assert_eq!(epoch::split_namespaced(fold_a), (ns_a, at_a), "round trip");
        if (ns_a, at_a) != (ns_b, at_b) {
            tk_assert!(
                fold_a != fold_b,
                "distinct (ns, attempt) pairs folded to the same word: \
                 ({ns_a},{at_a}) and ({ns_b},{at_b}) -> {fold_a}"
            );
        }
        Ok(())
    });
}
