//! Property tests on the ML layer's core invariant: aggregation strategy
//! never changes the math. For arbitrary datasets, weights from Tree,
//! Tree+IMM and Split training runs must agree to floating-point noise, and
//! libsvm round trips must be lossless.

use proptest::prelude::*;

use sparker::data::libsvm;
use sparker::data::synth::SparseExample;
use sparker::ml::glm::{run_gradient_descent, GdConfig, GradientKind};
use sparker::ml::point::LabeledPoint;
use sparker::prelude::*;

/// Strategy for a random sparse sample over `dim` features.
fn arb_point(dim: usize) -> impl Strategy<Value = LabeledPoint> {
    (
        prop_oneof![Just(1.0f64), Just(-1.0f64)],
        proptest::collection::btree_set(0..dim as u32, 1..(dim / 2).max(2)),
        proptest::collection::vec(-3.0f64..3.0, 64),
    )
        .prop_map(|(label, idx, vals)| {
            let indices: Vec<u32> = idx.into_iter().collect();
            let values: Vec<f64> =
                indices.iter().enumerate().map(|(i, _)| vals[i % vals.len()]).collect();
            LabeledPoint::new(label, indices, values)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn training_is_strategy_invariant(
        points in proptest::collection::vec(arb_point(24), 8..60),
        kind in prop_oneof![Just(GradientKind::Logistic), Just(GradientKind::Hinge)],
    ) {
        let dim = 24;
        let cluster = LocalCluster::local(3, 2);
        let ds = cluster.parallelize(points, 5);
        let cfg = |mode| GdConfig { iterations: 2, mode, ..Default::default() };
        let (w_tree, _) = run_gradient_descent(&ds, dim, kind, cfg(AggregationMode::Tree)).unwrap();
        let (w_imm, _) =
            run_gradient_descent(&ds, dim, kind, cfg(AggregationMode::TreeImm)).unwrap();
        let (w_split, _) =
            run_gradient_descent(&ds, dim, kind, cfg(AggregationMode::split())).unwrap();
        for i in 0..dim {
            prop_assert!((w_tree[i] - w_imm[i]).abs() < 1e-9, "imm differs at {i}");
            prop_assert!((w_tree[i] - w_split[i]).abs() < 1e-9, "split differs at {i}");
        }
    }

    #[test]
    fn libsvm_roundtrip_is_lossless(
        examples in proptest::collection::vec(
            (
                prop_oneof![Just(1.0f64), Just(-1.0f64)],
                proptest::collection::btree_map(0u32..500, -100.0f64..100.0, 0..20),
            )
                .prop_map(|(label, m)| {
                    let (indices, values): (Vec<u32>, Vec<f64>) = m.into_iter().unzip();
                    SparseExample { label, indices, values }
                }),
            0..30,
        ),
    ) {
        let text = libsvm::write(&examples);
        let parsed = libsvm::parse(&text).unwrap();
        prop_assert_eq!(parsed, examples);
    }

    #[test]
    fn gradient_accumulation_is_order_independent(
        points in proptest::collection::vec(arb_point(16), 2..20),
        w in proptest::collection::vec(-1.0f64..1.0, 16),
    ) {
        // Summing sample gradients in any order gives the same totals (up
        // to fp reassociation on disjoint sparse supports, which is exact
        // for disjoint indices and near-exact otherwise).
        let mut fwd = vec![0.0; 18];
        for p in &points {
            GradientKind::Logistic.accumulate(&w, p, &mut fwd);
        }
        let mut rev = vec![0.0; 18];
        for p in points.iter().rev() {
            GradientKind::Logistic.accumulate(&w, p, &mut rev);
        }
        for i in 0..18 {
            prop_assert!((fwd[i] - rev[i]).abs() <= 1e-9 * (1.0 + fwd[i].abs()));
        }
    }
}
