//! Property tests on the ML layer's core invariant: aggregation strategy
//! never changes the math. For arbitrary datasets, weights from Tree,
//! Tree+IMM and Split training runs must agree to floating-point noise, and
//! libsvm round trips must be lossless.

use std::collections::BTreeSet;

use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, Source};

use sparker::data::libsvm;
use sparker::data::synth::SparseExample;
use sparker::ml::glm::{run_gradient_descent, GdConfig, GradientKind};
use sparker::ml::point::LabeledPoint;
use sparker::prelude::*;

fn cfg() -> Config {
    Config::with_cases(8)
}

/// A random sparse sample over `dim` features: ±1 label, a non-empty
/// strictly-increasing index set, and bounded values.
fn arb_point(src: &mut Source, dim: usize) -> LabeledPoint {
    let label = src.choose(&[1.0f64, -1.0f64]);
    let size = src.usize_in(1..(dim / 2).max(2));
    let mut idx = BTreeSet::new();
    // Draw with rejection into a set, but bound the attempts: during shrink
    // replay an exhausted choice stream yields 0 forever, so an unbounded
    // loop would never terminate. The set may come up short then; any
    // non-empty subset is still a valid sparse point.
    let mut attempts = 0;
    while idx.len() < size && attempts < size * 8 {
        idx.insert(src.usize_in(0..dim) as u32);
        attempts += 1;
    }
    let vals: Vec<f64> = (0..idx.len()).map(|_| src.f64_in(-3.0..3.0)).collect();
    let indices: Vec<u32> = idx.into_iter().collect();
    LabeledPoint::new(label, indices, vals)
}

#[test]
fn training_is_strategy_invariant() {
    check(&cfg(), |src| {
        let points = src.vec_of(8..60, |s| arb_point(s, 24));
        let kind = src.choose(&[GradientKind::Logistic, GradientKind::Hinge]);
        let dim = 24;
        let cluster = LocalCluster::local(3, 2);
        let ds = cluster.parallelize(points, 5);
        let cfg = |mode| GdConfig { iterations: 2, mode, ..Default::default() };
        let (w_tree, _) = run_gradient_descent(&ds, dim, kind, cfg(AggregationMode::Tree)).unwrap();
        let (w_imm, _) =
            run_gradient_descent(&ds, dim, kind, cfg(AggregationMode::TreeImm)).unwrap();
        let (w_split, _) =
            run_gradient_descent(&ds, dim, kind, cfg(AggregationMode::split())).unwrap();
        for i in 0..dim {
            tk_assert!((w_tree[i] - w_imm[i]).abs() < 1e-9, "imm differs at {i}");
            tk_assert!((w_tree[i] - w_split[i]).abs() < 1e-9, "split differs at {i}");
        }
        Ok(())
    });
}

#[test]
fn libsvm_roundtrip_is_lossless() {
    check(&cfg(), |src| {
        let examples = src.vec_of(0..30, |s| {
            let label = s.choose(&[1.0f64, -1.0f64]);
            let size = s.usize_in(0..20);
            let mut m = std::collections::BTreeMap::new();
            for _ in 0..size {
                m.insert(s.usize_in(0..500) as u32, s.f64_in(-100.0..100.0));
            }
            let (indices, values): (Vec<u32>, Vec<f64>) = m.into_iter().unzip();
            SparseExample { label, indices, values }
        });
        let text = libsvm::write(&examples);
        let parsed = libsvm::parse(&text).unwrap();
        tk_assert_eq!(parsed, examples);
        Ok(())
    });
}

#[test]
fn gradient_accumulation_is_order_independent() {
    check(&cfg(), |src| {
        let points = src.vec_of(2..20, |s| arb_point(s, 16));
        let w: Vec<f64> = (0..16).map(|_| src.f64_in(-1.0..1.0)).collect();
        // Summing sample gradients in any order gives the same totals (up
        // to fp reassociation on disjoint sparse supports, which is exact
        // for disjoint indices and near-exact otherwise).
        let mut fwd = vec![0.0; 18];
        for p in &points {
            GradientKind::Logistic.accumulate(&w, p, &mut fwd);
        }
        let mut rev = vec![0.0; 18];
        for p in points.iter().rev() {
            GradientKind::Logistic.accumulate(&w, p, &mut rev);
        }
        for i in 0..18 {
            tk_assert!(
                (fwd[i] - rev[i]).abs() <= 1e-9 * (1.0 + fwd[i].abs()),
                "order-dependent total at {i}: fwd={} rev={}",
                fwd[i],
                rev[i]
            );
        }
        Ok(())
    });
}
