//! Property-based tests on the core invariants:
//!
//! * reduce-scatter (ring and halving) followed by reassembly equals a
//!   sequential reduction, for arbitrary cluster shapes and values;
//! * allreduce leaves every rank with the same, correct result;
//! * the codec round-trips arbitrary payloads;
//! * `slice_bounds` tiles any length exactly.

use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, Source};

use sparker::collectives::allreduce::ring_allreduce;
use sparker::collectives::gather::gather_segments;
use sparker::collectives::halving::recursive_halving_reduce_scatter;
use sparker::collectives::ring::ring_reduce_scatter;
use sparker::collectives::testing::{run_ring_cluster, RingClusterSpec};
use sparker::prelude::*;

fn cfg() -> Config {
    Config::with_cases(12)
}

fn arb_base(src: &mut Source, max_len: usize) -> Vec<i64> {
    src.vec_of(1..max_len, |s| s.i64_any())
}

/// Per-rank input: rank r's segment g holds `values[g]` shifted by rank.
fn seed(rank: usize, values: &[i64]) -> Vec<U64SumSegment> {
    values
        .iter()
        .map(|&v| U64SumSegment(vec![(v as u64).wrapping_add(rank as u64 * 1_000_003)]))
        .collect()
}

fn expected(g: usize, values: &[i64], n: usize) -> u64 {
    (0..n).fold(0u64, |acc, r| {
        acc.wrapping_add((values[g] as u64).wrapping_add(r as u64 * 1_000_003))
    })
}

#[test]
fn ring_reduce_scatter_equals_sequential() {
    check(&cfg(), |src| {
        let nodes = src.usize_in(1..4);
        let epn = src.usize_in(1..3);
        let parallelism = src.usize_in(1..4);
        let base = arb_base(src, 6);
        let spec = RingClusterSpec::unshaped(nodes, epn, parallelism);
        let n = spec.total_executors();
        let total = parallelism * n;
        // Tile the arbitrary values over the required segment count.
        let values: Vec<i64> = (0..total).map(|i| base[i % base.len()]).collect();
        let v2 = values.clone();
        let per_rank = run_ring_cluster(&spec, move |comm| {
            let segs = seed(comm.rank(), &v2);
            ring_reduce_scatter(&comm, segs).unwrap()
        });
        let mut seen = vec![false; total];
        for owned in &per_rank {
            for o in owned {
                tk_assert!(!seen[o.index], "segment {} owned twice", o.index);
                seen[o.index] = true;
                tk_assert_eq!(o.segment.0[0], expected(o.index, &values, n));
            }
        }
        tk_assert!(seen.iter().all(|&s| s), "not all segments owned: {seen:?}");
        Ok(())
    });
}

#[test]
fn halving_reduce_scatter_equals_sequential() {
    check(&cfg(), |src| {
        let nodes = src.usize_in(1..3);
        let epn = src.usize_in(1..4);
        let mult = src.usize_in(1..4);
        let base = arb_base(src, 6);
        let spec = RingClusterSpec::unshaped(nodes, epn, 1);
        let n = spec.total_executors();
        let mut p2 = 1usize;
        while p2 * 2 <= n {
            p2 *= 2;
        }
        let total = p2 * mult;
        let values: Vec<i64> = (0..total).map(|i| base[i % base.len()]).collect();
        let v2 = values.clone();
        let per_rank = run_ring_cluster(&spec, move |comm| {
            let segs = seed(comm.rank(), &v2);
            recursive_halving_reduce_scatter(&comm, segs).unwrap()
        });
        let mut seen = vec![false; total];
        for owned in &per_rank {
            for o in owned {
                tk_assert!(!seen[o.index], "segment {} owned twice", o.index);
                seen[o.index] = true;
                tk_assert_eq!(o.segment.0[0], expected(o.index, &values, n));
            }
        }
        tk_assert!(seen.iter().all(|&s| s), "not all segments owned: {seen:?}");
        Ok(())
    });
}

#[test]
fn allreduce_agrees_on_every_rank() {
    check(&cfg(), |src| {
        let epn = src.usize_in(1..5);
        let parallelism = src.usize_in(1..3);
        let base = arb_base(src, 4);
        let spec = RingClusterSpec::unshaped(1, epn, parallelism);
        let n = spec.total_executors();
        let total = parallelism * n;
        let values: Vec<i64> = (0..total).map(|i| base[i % base.len()]).collect();
        let v2 = values.clone();
        let per_rank = run_ring_cluster(&spec, move |comm| {
            let segs = seed(comm.rank(), &v2);
            ring_allreduce(&comm, segs).unwrap()
        });
        for result in &per_rank {
            tk_assert_eq!(result.len(), total);
            for (g, seg) in result.iter().enumerate() {
                tk_assert_eq!(seg.0[0], expected(g, &values, n));
            }
        }
        Ok(())
    });
}

#[test]
fn reduce_scatter_then_gather_is_full_reduction() {
    check(&cfg(), |src| {
        let epn = src.usize_in(2..5);
        let base = arb_base(src, 4);
        let spec = RingClusterSpec::unshaped(1, epn, 1);
        let n = spec.total_executors();
        let values: Vec<i64> = (0..n).map(|i| base[i % base.len()]).collect();
        let v2 = values.clone();
        let results = run_ring_cluster(&spec, move |comm| {
            let segs = seed(comm.rank(), &v2);
            let owned = ring_reduce_scatter(&comm, segs).unwrap();
            gather_segments(&comm, owned, 0, n).unwrap()
        });
        let segs = results[0].as_ref().unwrap();
        for (g, seg) in segs.iter().enumerate() {
            tk_assert_eq!(seg.0[0], expected(g, &values, n));
        }
        Ok(())
    });
}

#[test]
fn codec_roundtrips_arbitrary_floats() {
    check(&cfg(), |src| {
        let data = src.vec_of(0..200, |s| s.f64_any());
        let arr = F64Array(data.clone());
        let back = F64Array::from_frame(arr.to_frame()).unwrap();
        tk_assert_eq!(back.0.len(), data.len());
        for (a, b) in back.0.iter().zip(&data) {
            tk_assert_eq!(a.to_bits(), b.to_bits(), "bitwise identical, NaNs included");
        }
        Ok(())
    });
}

#[test]
fn codec_roundtrips_nested_payloads() {
    check(&cfg(), |src| {
        let items = src.vec_of(0..50, |s| (s.u32_any(), s.f64_any()));
        let label = src.string_of(0..33);
        let value = (label.clone(), items.clone());
        let back = <(String, Vec<(u32, f64)>)>::from_frame(value.to_frame()).unwrap();
        tk_assert_eq!(back.0, label);
        tk_assert_eq!(back.1.len(), items.len());
        for ((ai, af), (bi, bf)) in back.1.iter().zip(&items) {
            tk_assert_eq!(ai, bi);
            tk_assert_eq!(af.to_bits(), bf.to_bits());
        }
        Ok(())
    });
}

#[test]
fn slice_bounds_tile_exactly() {
    check(&cfg(), |src| {
        let len = src.usize_in(0..5000);
        let n = src.usize_in(1..64);
        let mut prev_end = 0;
        for i in 0..n {
            let (s, e) = slice_bounds(len, i, n);
            tk_assert_eq!(s, prev_end);
            tk_assert!(e >= s, "segment {i} has negative extent");
            prev_end = e;
        }
        tk_assert_eq!(prev_end, len);
        Ok(())
    });
}
