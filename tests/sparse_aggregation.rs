//! End-to-end sparse split aggregation: real workload folds
//! (classification gradients from `SparseExample`s, LDA word counts from
//! `Document`s) through `split_aggregate` with sparse/adaptive segments,
//! checked against the dense path on every topology — ring, halving, and
//! the forced tree fallback — plus the wire-byte reduction the subsystem
//! exists for.

use std::time::Duration;

use sparker::data::synth::{ClassificationGen, CorpusGen, SparseExample};
use sparker::net::{ExecutorId, NetFaultPlan};
use sparker::prelude::*;
use sparker::sparse::SparseAccum;
use sparker_engine::metrics::AggMetrics;
use sparker_engine::ops::split_aggregate::RsAlgorithm;

const FEATURES: usize = 512;
const SAMPLES: u64 = 96;
const PARTITIONS: usize = 8;

fn close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
            "index {i}: {x} vs {y}"
        );
    }
}

/// A fixed weight vector so the gradient is non-trivial.
fn weights() -> Vec<f64> {
    (0..FEATURES).map(|i| ((i % 13) as f64 - 6.0) * 0.05).collect()
}

fn classification_data(cluster: &LocalCluster) -> sparker::engine::dataset::Dataset<SparseExample> {
    cluster.generate(PARTITIONS, |p| {
        ClassificationGen::new(42, FEATURES, 6).partition(p, PARTITIONS, SAMPLES)
    })
}

/// Dense-path log-loss gradient: the oracle every sparse variant must match.
fn dense_gradient(cluster: &LocalCluster, opts: SplitAggOpts) -> (Vec<f64>, AggMetrics) {
    let w = weights();
    let (v, m) = classification_data(cluster)
        .split_aggregate(
            F64Array(vec![0.0; FEATURES]),
            move |mut acc: F64Array, ex: &SparseExample| {
                let margin = ex.dot(&w);
                let scale = -ex.label / (1.0 + (ex.label * margin).exp());
                for (&i, &x) in ex.indices.iter().zip(&ex.values) {
                    acc.0[i as usize] += scale * x;
                }
                acc
            },
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            opts,
        )
        .unwrap();
    (sparker::dense::to_vec(v), m)
}

fn sparse_gradient(
    cluster: &LocalCluster,
    opts: SplitAggOpts,
    adaptive: bool,
) -> (Vec<f64>, AggMetrics) {
    let w = weights();
    let split = if adaptive { sparker::sparse::split } else { sparker::sparse::split_sparse };
    let (v, m) = classification_data(cluster)
        .split_aggregate(
            sparker::sparse::zeros(FEATURES),
            move |acc: SparseAccum, ex: &SparseExample| {
                sparker::sparse::fold_logistic_sparse(acc, ex, &w)
            },
            sparker::sparse::merge,
            split,
            sparker::sparse::merge_segments,
            sparker::sparse::concat,
            opts,
        )
        .unwrap();
    (v.to_dense(), m)
}

#[test]
fn classification_gradients_match_dense_on_ring_and_halving() {
    let cluster = LocalCluster::local(4, 2);
    for algorithm in [RsAlgorithm::Ring, RsAlgorithm::Halving] {
        let opts = || SplitAggOpts { algorithm, ..Default::default() };
        let (dense, _) = dense_gradient(&cluster, opts());
        let (sparse, _) = sparse_gradient(&cluster, opts(), false);
        let (adaptive, _) = sparse_gradient(&cluster, opts(), true);
        close(&dense, &sparse);
        close(&dense, &adaptive);
    }
}

#[test]
fn classification_gradients_match_dense_through_tree_fallback() {
    // A permanently dead link exhausts the gang: the adaptive path must
    // downgrade to the tree fallback and still match the dense oracle
    // computed on an unfaulted cluster.
    let clean = LocalCluster::local(3, 2);
    let (oracle, _) = dense_gradient(&clean, SplitAggOpts::default());

    let spec = ClusterSpec::local(3, 2)
        .with_collective_recv_timeout(Duration::from_millis(200))
        .with_max_collective_attempts(2)
        .with_stage_timeout(Duration::from_secs(60))
        .with_sc_fault(NetFaultPlan::new().partition(&[(ExecutorId(0), ExecutorId(1))]));
    let faulted = LocalCluster::new(spec);
    let (v, m) = sparse_gradient(&faulted, SplitAggOpts::default(), true);
    assert!(m.downgraded, "the dead link must exhaust the gang");
    close(&oracle, &v);
}

#[test]
fn lda_word_counts_match_dense_exactly() {
    // Integer-valued sufficient statistics: any topology and any
    // representation must agree bit-for-bit.
    const VOCAB: usize = 600;
    const DOCS: u64 = 48;
    let cluster = LocalCluster::local(3, 2);
    let corpus = |p: usize| CorpusGen::new(7, VOCAB, 6, 40).partition(p, 6, DOCS);

    let data = cluster.generate(6, move |p| corpus(p));
    let (dense, _) = data
        .split_aggregate(
            F64Array(vec![0.0; VOCAB]),
            |mut acc: F64Array, doc: &sparker::data::synth::Document| {
                for &(w, c) in &doc.words {
                    acc.0[w as usize] += c as f64;
                }
                acc
            },
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            SplitAggOpts::default(),
        )
        .unwrap();

    let data = cluster.generate(6, move |p| corpus(p));
    let (sparse, _) = data
        .split_aggregate(
            sparker::sparse::zeros(VOCAB),
            sparker::sparse::fold_doc_counts_sparse,
            sparker::sparse::merge,
            sparker::sparse::split,
            sparker::sparse::merge_segments,
            sparker::sparse::concat,
            SplitAggOpts::default(),
        )
        .unwrap();
    assert_eq!(sparker::dense::to_vec(dense), sparse.to_dense());
}

#[test]
fn sparse_wire_bytes_are_at_least_5x_below_dense_at_1_percent_density() {
    // Synthetic 1%-density updates (as in the ablation bench, but sized
    // for a test): the unified wire-bytes accounting must show ≥5× less
    // traffic for sparse and adaptive than dense.
    const DIM: usize = 8192;
    let cluster = LocalCluster::local(3, 2);
    let gen = |p: usize| -> Vec<Vec<(u32, f64)>> {
        let mut g = sparker::data::rng::SplitMix64::for_stream(99, p as u64);
        let zipf = sparker::data::rng::Zipf::new(DIM, 1.05);
        (0..3)
            .map(|_| {
                let mut m = std::collections::BTreeMap::new();
                for _ in 0..DIM / 100 {
                    *m.entry(zipf.sample(&mut g) as u32).or_insert(0.0) += 1.0;
                }
                m.into_iter().collect()
            })
            .collect()
    };

    let data = cluster.generate(6, move |p| gen(p));
    let (dv, dm) = data
        .split_aggregate(
            F64Array(vec![0.0; DIM]),
            |mut acc: F64Array, item: &Vec<(u32, f64)>| {
                for &(i, d) in item {
                    acc.0[i as usize] += d;
                }
                acc
            },
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            SplitAggOpts::default(),
        )
        .unwrap();

    for adaptive in [false, true] {
        let data = cluster.generate(6, move |p| gen(p));
        let split = if adaptive { sparker::sparse::split } else { sparker::sparse::split_sparse };
        let (sv, sm) = data
            .split_aggregate(
                sparker::sparse::zeros(DIM),
                |mut acc: SparseAccum, item: &Vec<(u32, f64)>| {
                    for &(i, d) in item {
                        acc.add(i, d);
                    }
                    acc
                },
                sparker::sparse::merge,
                split,
                sparker::sparse::merge_segments,
                sparker::sparse::concat,
                SplitAggOpts::default(),
            )
            .unwrap();
        assert_eq!(sv.to_dense(), sparker::dense::to_vec(dv.clone()), "adaptive={adaptive}");
        assert!(
            sm.wire_bytes() * 5 <= dm.wire_bytes(),
            "adaptive={adaptive}: {} vs dense {}",
            sm.wire_bytes(),
            dm.wire_bytes()
        );
    }
}
