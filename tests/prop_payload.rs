//! Property suite pinning the `Payload::size_hint` contract: for every
//! impl in the workspace, `size_hint()` equals the exact encoded length
//! (`to_frame().len()`), and the frame decodes back to the same value.
//!
//! This is what lets `Segment::payload_bytes` default to `size_hint` and
//! benches/metrics report one unified wire-bytes number — if any impl
//! drifts from its encoder, this suite fails.

use sparker_testkit::{check, tk_assert_eq, Config, Source};

use sparker::collectives::composite::CompositeAgg;
use sparker::collectives::segment::Segment as _;
use sparker::ml::aggregator::{DenseOrSparse, SparseSegment};
use sparker::ml::LabeledPoint;
use sparker::prelude::*;

fn cfg() -> Config {
    Config::with_cases(24)
}

/// Asserts the exact-length contract and the round-trip for one value.
fn exact<T: Payload + PartialEq + std::fmt::Debug + Clone>(
    v: &T,
) -> Result<(), sparker_testkit::PropError> {
    let frame = v.to_frame();
    tk_assert_eq!(frame.len(), v.size_hint(), "size_hint must be the exact encoded length");
    let back =
        T::from_frame(frame).map_err(|e| sparker_testkit::PropError::new(e.to_string()))?;
    tk_assert_eq!(&back, v, "frame must decode back to the same value");
    Ok(())
}

/// Finite `f64`s (NaN would break `PartialEq` equality, which is the
/// round-trip oracle here; bit-level NaN round-tripping is covered by
/// `prop_collectives::codec_roundtrips_arbitrary_floats`).
fn finite_f64(src: &mut Source) -> f64 {
    src.f64_in(-1.0e9..1.0e9)
}

/// A valid sparse segment: strictly increasing indices below `len`.
fn arb_sparse(src: &mut Source, max_len: usize) -> SparseSegment {
    let len = src.usize_in(0..max_len);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for i in 0..len {
        if src.bool_any() {
            indices.push(i as u32);
            values.push(finite_f64(src));
        }
    }
    SparseSegment::new(len, indices, values)
}

#[test]
fn primitives_and_containers_have_exact_size_hints() {
    check(&cfg(), |src| {
        exact(&src.u8_any())?;
        exact(&src.bool_any())?;
        exact(&src.u32_any())?;
        exact(&src.u64_any())?;
        exact(&src.i64_any())?;
        exact(&finite_f64(src))?;
        exact(&src.usize_in(0..usize::MAX))?;
        exact(&src.string_of(0..64))?;
        exact(&())?;
        exact(&src.vec_of(0..32, |s| s.u64_any()))?;
        exact(&src.vec_of(0..8, |s| s.string_of(0..16)))?;
        exact(&if src.bool_any() { Some(src.i64_any()) } else { None })?;
        exact(&(src.u32_any(), src.string_of(0..16)))?;
        exact(&(src.u8_any(), src.u64_any(), finite_f64(src)))?;
        exact(&F64Array(src.vec_of(0..64, finite_f64)))?;
        Ok(())
    });
}

#[test]
fn segment_types_have_exact_size_hints() {
    check(&cfg(), |src| {
        let sum = SumSegment(src.vec_of(0..64, finite_f64));
        exact(&sum)?;
        tk_assert_eq!(sum.payload_bytes(), sum.size_hint(), "unified accounting");
        let u64sum = U64SumSegment(src.vec_of(0..64, |s| s.u64_any()));
        exact(&u64sum)?;
        tk_assert_eq!(u64sum.payload_bytes(), u64sum.size_hint(), "unified accounting");
        Ok(())
    });
}

#[test]
fn composite_agg_has_exact_size_hint() {
    check(&cfg(), |src| {
        let fields = src.vec_of(0..4, |s| s.vec_of(0..16, finite_f64));
        let scalars = src.vec_of(0..4, finite_f64);
        exact(&CompositeAgg::from_parts(fields, scalars))
    });
}

#[test]
fn labeled_point_has_exact_size_hint() {
    check(&cfg(), |src| {
        let nnz = src.usize_in(0..16);
        let indices: Vec<u32> = (0..nnz as u32).collect();
        let values = src.vec_of(nnz..nnz + 1, finite_f64);
        let label = if src.bool_any() { 1.0 } else { -1.0 };
        exact(&LabeledPoint::new(label, indices, values))
    });
}

#[test]
fn sparse_segment_has_exact_size_hint() {
    check(&cfg(), |src| {
        let seg = arb_sparse(src, 80);
        exact(&seg)?;
        tk_assert_eq!(seg.payload_bytes(), seg.size_hint(), "unified accounting");
        Ok(())
    });
}

#[test]
fn adaptive_segment_has_exact_size_hint_in_both_arms() {
    check(&cfg(), |src| {
        let dense: Vec<f64> = src.vec_of(0..80, |s| {
            if s.bool_any() {
                finite_f64(s)
            } else {
                0.0
            }
        });
        // Sweep thresholds that exercise both representations.
        let threshold = src.choose(&[0.0, 0.25, 0.5, 1.0, 2.0]);
        let seg = DenseOrSparse::from_dense(dense, threshold);
        exact(&seg)?;
        tk_assert_eq!(seg.payload_bytes(), seg.size_hint(), "unified accounting");
        Ok(())
    });
}
