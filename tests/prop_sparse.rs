//! Property suite for the sparse aggregation subsystem:
//!
//! * sparse ↔ dense round-trip identity;
//! * sparse merge equals dense merge (fp tolerance);
//! * split-then-reduce equals reduce-then-split for `SparseSegment`;
//! * the adaptive switch is value-preserving at the threshold boundary;
//! * ring and halving reduce-scatter over `DenseOrSparse` segments agree
//!   numerically with the dense `SumSegment` path on the same topology
//!   (the tree-fallback leg of the equivalence claim lives in
//!   `tests/sparse_aggregation.rs`, where the fallback can be forced).

use sparker_testkit::{check, tk_assert, tk_assert_eq, Config, Source};

use sparker::collectives::halving::recursive_halving_reduce_scatter;
use sparker::collectives::ring::ring_reduce_scatter;
use sparker::collectives::testing::{run_ring_cluster, RingClusterSpec};
use sparker::ml::aggregator::{DenseOrSparse, SparseAccum, SparseSegment};
use sparker::prelude::*;

fn cfg() -> Config {
    Config::with_cases(16)
}

/// Mostly-zero dense vectors with integer-ish values so cross-topology
/// sums stay exactly representable (tolerance checks still apply).
fn arb_dense(src: &mut Source, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| if src.bool_any() { 0.0 } else { src.i64_any() as f64 % 1024.0 })
        .collect()
}

fn assert_close(a: &[f64], b: &[f64]) -> Result<(), sparker_testkit::PropError> {
    tk_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        tk_assert!(
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
            "index {i}: {x} vs {y}"
        );
    }
    Ok(())
}

#[test]
fn sparse_dense_roundtrip_identity() {
    check(&cfg(), |src| {
        let len = src.usize_in(0..200);
        let dense = arb_dense(src, len);
        let seg = SparseSegment::from_dense(&dense);
        tk_assert_eq!(seg.to_dense(), dense, "from_dense ∘ to_dense is identity");
        tk_assert!(seg.density() <= 1.0);
        // And through the accumulator.
        let acc = SparseAccum::from_dense(&dense);
        tk_assert_eq!(acc.to_dense(), dense);
        Ok(())
    });
}

#[test]
fn sparse_merge_equals_dense_merge() {
    check(&cfg(), |src| {
        let len = src.usize_in(1..150);
        let a = arb_dense(src, len);
        let b = arb_dense(src, len);
        let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let mut s = SparseSegment::from_dense(&a);
        s.merge_sparse(&SparseSegment::from_dense(&b));
        assert_close(&s.to_dense(), &want)?;
        // Adaptive, across representation combinations.
        let ta = src.choose(&[0.0, 0.5, 2.0]);
        let tb = src.choose(&[0.0, 0.5, 2.0]);
        let mut da = DenseOrSparse::from_dense(a, ta);
        da.merge(&DenseOrSparse::from_dense(b, tb));
        assert_close(&da.to_dense(), &want)?;
        Ok(())
    });
}

#[test]
fn split_then_reduce_equals_reduce_then_split() {
    check(&cfg(), |src| {
        let len = src.usize_in(1..150);
        let n = src.usize_in(1..9);
        let a = SparseAccum::from_dense(&arb_dense(src, len));
        let b = SparseAccum::from_dense(&arb_dense(src, len));
        let threshold = src.choose(&[0.0, 0.5, 2.0]);
        let mut whole = a.clone();
        whole.merge(&b);
        for i in 0..n {
            let direct = whole.segment(i, n, threshold);
            let mut split_first = a.segment(i, n, threshold);
            split_first.merge(&b.segment(i, n, threshold));
            assert_close(&direct.to_dense(), &split_first.to_dense())?;
        }
        Ok(())
    });
}

#[test]
fn adaptive_switch_is_value_preserving_at_the_boundary() {
    check(&cfg(), |src| {
        // Build a segment sitting exactly at the threshold, then push it
        // one entry past: the representation must flip sparse → dense with
        // values intact.
        let len = 2 * src.usize_in(2..50);
        let threshold = 0.5;
        let mut dense = vec![0.0; len];
        for v in dense.iter_mut().take(len / 2) {
            *v = (src.i64_any() as f64 % 512.0).abs() + 1.0;
        }
        let mut seg = DenseOrSparse::from_dense(dense.clone(), threshold);
        tk_assert!(seg.is_sparse(), "at density == threshold the segment stays sparse");
        // Merge in one new coordinate from the zero half.
        let extra = len / 2 + src.usize_in(0..len / 2);
        let mut other = vec![0.0; len];
        other[extra] = 7.0;
        let want: Vec<f64> = dense.iter().zip(&other).map(|(x, y)| x + y).collect();
        seg.merge(&DenseOrSparse::from_dense(other, threshold));
        tk_assert!(!seg.is_sparse(), "fill-in past the threshold must densify");
        tk_assert_eq!(seg.to_dense(), want, "the switch must not change values");
        Ok(())
    });
}

/// Shared harness: reduce-scatter per-rank `DenseOrSparse` segments and the
/// same data as dense `SumSegment`s; both must agree per segment index.
fn topology_equivalence(src: &mut Source, halving: bool) -> Result<(), sparker_testkit::PropError> {
    let nodes = src.usize_in(1..3);
    let epn = src.usize_in(1..4);
    let par = if halving { 1 } else { src.usize_in(1..3) };
    let spec = RingClusterSpec::unshaped(nodes, epn, par);
    let n = spec.total_executors();
    // The ring wants exactly P*N segments; halving wants a multiple of the
    // largest power of two ≤ N.
    let total = if halving {
        let mut p2 = 1usize;
        while p2 * 2 <= n {
            p2 *= 2;
        }
        p2 * src.usize_in(1..4)
    } else {
        par * n
    };
    let seg_len = src.usize_in(1..12);
    let threshold = src.choose(&[0.0, 0.5, 2.0]);
    // values[rank][segment] is a dense vector, mostly zeros.
    let values: Vec<Vec<Vec<f64>>> =
        (0..n).map(|_| (0..total).map(|_| arb_dense(src, seg_len)).collect()).collect();

    let v_sparse = values.clone();
    let sparse_ranks = run_ring_cluster(&spec, move |comm| {
        let segs: Vec<DenseOrSparse> = v_sparse[comm.rank()]
            .iter()
            .map(|d| DenseOrSparse::from_dense(d.clone(), threshold))
            .collect();
        if halving {
            recursive_halving_reduce_scatter(&comm, segs).unwrap()
        } else {
            ring_reduce_scatter(&comm, segs).unwrap()
        }
    });
    let v_dense = values.clone();
    let dense_ranks = run_ring_cluster(&spec, move |comm| {
        let segs: Vec<SumSegment> =
            v_dense[comm.rank()].iter().map(|d| SumSegment(d.clone())).collect();
        if halving {
            recursive_halving_reduce_scatter(&comm, segs).unwrap()
        } else {
            ring_reduce_scatter(&comm, segs).unwrap()
        }
    });

    let mut dense_by_index: Vec<Option<Vec<f64>>> = vec![None; total];
    for owned in &dense_ranks {
        for o in owned {
            dense_by_index[o.index] = Some(o.segment.0.clone());
        }
    }
    let mut seen = 0usize;
    for owned in &sparse_ranks {
        for o in owned {
            let want = dense_by_index[o.index]
                .as_ref()
                .ok_or_else(|| sparker_testkit::PropError::new("dense path missed a segment"))?;
            assert_close(&o.segment.to_dense(), want)?;
            seen += 1;
        }
    }
    tk_assert_eq!(seen, total, "sparse path must cover every segment");
    Ok(())
}

#[test]
fn ring_over_adaptive_segments_matches_dense_path() {
    check(&cfg(), |src| topology_equivalence(src, false));
}

#[test]
fn halving_over_adaptive_segments_matches_dense_path() {
    check(&cfg(), |src| topology_equivalence(src, true));
}
