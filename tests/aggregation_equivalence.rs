//! Cross-crate integration: every aggregation strategy computes the same
//! answer as a sequential fold, across cluster shapes, partition counts,
//! algorithms and parallelism degrees — the backward-compatibility claim
//! of the paper's split-aggregation interface.

use sparker::prelude::*;

/// Sums vectors through the chosen strategy, returning the reduced vector.
fn run(
    cluster: &LocalCluster,
    partitions: usize,
    dim: usize,
    strategy: &str,
    opts: SplitAggOpts,
) -> Vec<f64> {
    let data = cluster
        .generate(partitions, move |p| vec![vec![(p + 1) as f64; dim]; 2])
        .cache();
    data.count().unwrap();
    let seq = move |mut acc: F64Array, v: &Vec<f64>| {
        for (a, x) in acc.0.iter_mut().zip(v) {
            *a += *x;
        }
        acc
    };
    match strategy {
        "plain" => {
            let r = data
                .aggregate(
                    F64Array(vec![0.0; dim]),
                    seq,
                    |mut a, b| {
                        sparker::dense::merge(&mut a, b);
                        a
                    },
                )
                .unwrap();
            r.0
        }
        "tree" | "tree+imm" => {
            let (r, _) = data
                .tree_aggregate(
                    F64Array(vec![0.0; dim]),
                    seq,
                    |mut a, b| {
                        sparker::dense::merge(&mut a, b);
                        a
                    },
                    TreeAggOpts { depth: 2, imm: strategy == "tree+imm" },
                )
                .unwrap();
            r.0
        }
        _ => {
            let (r, _) = data
                .split_aggregate(
                    F64Array(vec![0.0; dim]),
                    seq,
                    sparker::dense::merge,
                    sparker::dense::split,
                    sparker::dense::merge_segments,
                    sparker::dense::concat,
                    opts,
                )
                .unwrap();
            r.0
        }
    }
}

fn expected(partitions: usize, dim: usize) -> Vec<f64> {
    let total: f64 = (1..=partitions).map(|p| 2.0 * p as f64).sum();
    vec![total; dim]
}

#[test]
fn all_strategies_agree_across_shapes() {
    for (execs, cores) in [(1usize, 1usize), (3, 2), (5, 1)] {
        let cluster = LocalCluster::local(execs, cores);
        for partitions in [1usize, 4, 13] {
            for dim in [1usize, 37, 512] {
                let want = expected(partitions, dim);
                for strategy in ["plain", "tree", "tree+imm", "split"] {
                    let got = run(&cluster, partitions, dim, strategy, SplitAggOpts::default());
                    assert_eq!(
                        got, want,
                        "{strategy} on {execs}x{cores}, {partitions} parts, dim {dim}"
                    );
                }
            }
        }
    }
}

#[test]
fn split_variants_agree() {
    let cluster = LocalCluster::local(4, 2);
    let want = expected(8, 100);
    for algorithm in [RsAlgorithm::Ring, RsAlgorithm::Halving] {
        for parallelism in [1usize, 2, 5, 8] {
            let got = run(
                &cluster,
                8,
                100,
                "split",
                SplitAggOpts { parallelism: Some(parallelism), algorithm, ..Default::default() },
            );
            assert_eq!(got, want, "{algorithm:?} P={parallelism}");
        }
    }
}

#[test]
fn ring_order_does_not_change_results() {
    for order in [RingOrder::TopologyAware, RingOrder::ById] {
        let cluster = LocalCluster::new(
            ClusterSpec::local(4, 2).with_ring_order(order),
        );
        let got = run(&cluster, 6, 64, "split", SplitAggOpts::default());
        assert_eq!(got, expected(6, 64), "{order:?}");
    }
}

#[test]
fn shaped_cluster_still_exact() {
    // Shaping delays messages; it must never change values.
    let cluster = LocalCluster::new(ClusterSpec::bic(2, 4.0).with_shape(2, 1));
    let got = run(&cluster, 4, 128, "split", SplitAggOpts::default());
    assert_eq!(got, expected(4, 128));
    let got = run(&cluster, 4, 128, "tree", SplitAggOpts::default());
    assert_eq!(got, expected(4, 128));
}

#[test]
fn split_sends_driver_exactly_one_aggregator() {
    let cluster = LocalCluster::local(4, 2);
    let dim = 4096;
    let data = cluster
        .generate(8, move |p| vec![vec![p as f64; dim]; 1])
        .cache();
    data.count().unwrap();
    let seq = move |mut acc: F64Array, v: &Vec<f64>| {
        for (a, x) in acc.0.iter_mut().zip(v) {
            *a += *x;
        }
        acc
    };
    let (_, tree) = data
        .tree_aggregate(
            F64Array(vec![0.0; dim]),
            seq,
            |mut a, b| {
                sparker::dense::merge(&mut a, b);
                a
            },
            TreeAggOpts::default(),
        )
        .unwrap();
    let (_, split) = data
        .split_aggregate(
            F64Array(vec![0.0; dim]),
            seq,
            sparker::dense::merge,
            sparker::dense::split,
            sparker::dense::merge_segments,
            sparker::dense::concat,
            SplitAggOpts::default(),
        )
        .unwrap();
    let payload = (dim * 8) as u64;
    assert!(split.bytes_to_driver < payload + payload / 4, "split driver bytes ~1 aggregator");
    // 8 partitions, scale 3: one shuffle round leaves 2 aggregators, both
    // shipped whole to the driver.
    assert!(
        tree.bytes_to_driver >= 2 * payload,
        "tree ships every remaining aggregator to the driver: {}",
        tree.bytes_to_driver
    );
    assert!(tree.bytes_to_driver > split.bytes_to_driver);
}
