//! Integration: concurrent driver actions on one cluster.
//!
//! Result frames from different operations share the per-executor→driver
//! streams, so the engine serializes actions behind a driver lock (as
//! Spark's driver serializes result handling per job). Concurrent callers
//! must all get correct answers, never each other's frames.

use std::sync::Arc;

use sparker::prelude::*;

#[test]
fn concurrent_aggregations_all_correct() {
    let cluster = Arc::new(LocalCluster::local(3, 2));
    let handles: Vec<_> = (0..6)
        .map(|k| {
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                let data = cluster.generate(5, move |p| vec![(p as u64 + 1) * (k + 1)]);
                if k % 2 == 0 {
                    let (sum, _) = data
                        .tree_aggregate(0u64, |a, x| a + *x, |a, b| a + b, TreeAggOpts::default())
                        .unwrap();
                    (k, sum)
                } else {
                    let (sum, _) = data
                        .split_aggregate(
                            0u64,
                            |a, x| a + *x,
                            |a, b| *a += b,
                            |u, i, _n| if i == 0 { *u } else { 0 },
                            |a, b| *a += b,
                            |segs| segs.into_iter().sum(),
                            SplitAggOpts::default(),
                        )
                        .unwrap();
                    (k, sum)
                }
            })
        })
        .collect();
    for h in handles {
        let (k, sum) = h.join().unwrap();
        assert_eq!(sum, 15 * (k + 1), "thread {k} got a wrong (stolen?) result");
    }
}

#[test]
fn concurrent_collects_do_not_mix_frames() {
    let cluster = Arc::new(LocalCluster::local(2, 2));
    let handles: Vec<_> = (0..4u64)
        .map(|k| {
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                let data = cluster.generate(3, move |p| vec![k * 100 + p as u64]);
                let got = data.collect().unwrap();
                (k, got)
            })
        })
        .collect();
    for h in handles {
        let (k, got) = h.join().unwrap();
        assert_eq!(got, vec![k * 100, k * 100 + 1, k * 100 + 2]);
    }
}
