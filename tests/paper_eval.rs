//! Integration coverage for the paper-parity evaluation harness
//! (DESIGN.md §5k): determinism of the emitted artifacts, and proof that
//! the bound checks are live — a deliberately mistuned configuration must
//! degrade into a *typed* violation, not a panic or a hang.

use sparker_sim::eval::{run_paper_eval, BoundOp, EvalConfig, EvalScale};
use sparker_tuner::{CostModel, LinkParams};

/// (a) Two runs with the same seed produce byte-identical
/// `results/paper_eval.json` content (and the same BENCH_10 family body) —
/// the property `bin/paper_eval`'s on-disk artifacts inherit.
#[test]
fn same_seed_runs_are_byte_identical() {
    let a = run_paper_eval(&EvalConfig::smoke(7));
    let b = run_paper_eval(&EvalConfig::smoke(7));
    assert_eq!(a.to_json(), b.to_json(), "results/paper_eval.json must be reproducible");
    assert_eq!(a.bench_json(), b.bench_json(), "BENCH_10.json must be reproducible");
    assert_eq!(a.ledger_markdown(), b.ledger_markdown());
}

/// Different seeds change scenario choices (fault victims, links) but not
/// the physics: every bound still holds, and the emitted schema is stable.
#[test]
fn seeds_vary_scenarios_without_breaking_bounds() {
    for seed in [1, 99, 12345] {
        let r = run_paper_eval(&EvalConfig::smoke(seed));
        r.check().unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

/// (b) The speedup/parity bounds actually fire on a mistuned
/// configuration: inflating the cost model's alphas by four orders of
/// magnitude makes the selector prefer round-minimizing algorithms (the
/// whole-aggregator tree) where the DES ground truth says the ring family
/// wins, so `selector_within_margin` must come back as a typed
/// [`sparker_sim::eval::BoundViolation`] — the report still renders, no
/// panic, no hang.
#[test]
fn inflated_alpha_fires_a_typed_bound_violation() {
    let sane = CostModel::default_model();
    let mistuned = CostModel {
        intra: LinkParams { alpha_s: sane.intra.alpha_s + 1.0, ..sane.intra },
        inter: LinkParams { alpha_s: sane.inter.alpha_s + 1.0, ..sane.inter },
        ..sane
    };
    let cfg = EvalConfig {
        scale: EvalScale::Smoke,
        seed: 7,
        model_override: Some(mistuned),
    };
    let report = run_paper_eval(&cfg);
    let violation = report.check().expect_err("mistuned model must violate a bound");
    assert_eq!(violation.name, "selector_within_margin");
    assert_eq!(violation.op, BoundOp::AtMost);
    assert!(
        violation.measured > violation.limit,
        "measured {} should exceed limit {}",
        violation.measured,
        violation.limit
    );
    // The report is complete despite the failure: every bound measured,
    // every figure emitted, JSON still renders.
    assert!(report.failed_count() >= 1);
    assert!(!report.figures.is_empty());
    sparker_obs::json::parse(&report.to_json()).expect("violating report still serializes");
}
