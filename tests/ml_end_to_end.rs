//! Cross-crate integration: full training runs through the facade — every
//! model of Table 3, every aggregation mode, identical results, plus
//! dataset round trips through libsvm.

use sparker::data::libsvm;
use sparker::data::profiles::{avazu, enron};
use sparker::ml::glm::TrainRecord;
use sparker::ml::lda;
use sparker::ml::point::LabeledPoint;
use sparker::prelude::*;

fn classification_data(cluster: &LocalCluster, samples: u64, features: usize) -> Dataset<LabeledPoint> {
    let gen = avazu().feature_scaled(features as f64 / 1e6).classification_gen();
    let parts = 4;
    let ds = cluster.generate(parts, move |p| {
        gen.partition(p, parts, samples)
            .into_iter()
            .map(LabeledPoint::from)
            .collect()
    });
    let ds = ds.cache();
    ds.count().unwrap();
    ds
}

fn weights_close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < 1e-9, "weight {i}: {x} vs {y}");
    }
}

#[test]
fn lr_three_modes_identical_and_loss_decreases() {
    let cluster = LocalCluster::local(3, 2);
    let data = classification_data(&cluster, 600, 64);
    let lr = LogisticRegression { iterations: 8, ..Default::default() };
    let (m_tree, rec) = lr.train(&data, 64).unwrap();
    let (m_imm, _) = lr.with_mode(AggregationMode::TreeImm).train(&data, 64).unwrap();
    let (m_split, _) = lr.with_mode(AggregationMode::split()).train(&data, 64).unwrap();
    weights_close(&m_tree.weights, &m_imm.weights);
    weights_close(&m_tree.weights, &m_split.weights);
    assert!(rec.last().unwrap().loss < rec[0].loss);
    assert!(rec.iter().all(|r: &TrainRecord| r.count == 600));
}

#[test]
fn svm_three_modes_identical() {
    let cluster = LocalCluster::local(2, 2);
    let data = classification_data(&cluster, 400, 32);
    let svm = LinearSvm { iterations: 6, ..Default::default() };
    let (m_tree, _) = svm.train(&data, 32).unwrap();
    let (m_imm, _) = svm.with_mode(AggregationMode::TreeImm).train(&data, 32).unwrap();
    let (m_split, _) = svm.with_mode(AggregationMode::split()).train(&data, 32).unwrap();
    weights_close(&m_tree.weights, &m_imm.weights);
    weights_close(&m_tree.weights, &m_split.weights);
}

#[test]
fn lda_split_mode_trains_and_improves() {
    let cluster = LocalCluster::local(3, 2);
    let profile = enron().scaled(2e-3).feature_scaled(4e-3);
    let gen = profile.corpus_gen(4);
    let docs = profile.samples();
    let vocab = profile.features();
    let g = gen.clone();
    let data = cluster.generate(4, move |p| g.partition(p, 4, docs)).cache();
    data.count().unwrap();
    let cfg = lda::LdaConfig { iterations: 5, ..lda::LdaConfig::new(4, vocab) }
        .with_mode(AggregationMode::split());
    let (model, records) = lda::train(&data, cfg).unwrap();
    assert_eq!(model.lambda.len(), 4 * vocab);
    assert!(records.last().unwrap().neg_loglik_per_word < records[0].neg_loglik_per_word);
}

#[test]
fn training_metrics_expose_aggregation_strategy() {
    let cluster = LocalCluster::local(2, 2);
    let data = classification_data(&cluster, 200, 16);
    let lr = LogisticRegression { iterations: 2, ..Default::default() };
    let (_, rec_tree) = lr.train(&data, 16).unwrap();
    assert_eq!(rec_tree[0].metrics.strategy, AggStrategy::Tree);
    let (_, rec_split) = lr.with_mode(AggregationMode::split()).train(&data, 16).unwrap();
    assert_eq!(rec_split[0].metrics.strategy, AggStrategy::Split);
    assert!(rec_split[0].metrics.bytes_to_driver < rec_tree[0].metrics.bytes_to_driver);
}

#[test]
fn libsvm_roundtrip_feeds_training() {
    // Serialize a synthetic dataset to libsvm text, parse it back, and
    // train on the parsed copy: both models must be identical.
    let gen = avazu().feature_scaled(3.2e-5).classification_gen(); // 32 features
    let examples: Vec<_> = (0..200).map(|i| gen.sample(i)).collect();
    let text = libsvm::write(&examples);
    let parsed = libsvm::parse(&text).unwrap();
    assert_eq!(parsed, examples);

    let cluster = LocalCluster::local(2, 1);
    let original: Vec<LabeledPoint> = examples.into_iter().map(Into::into).collect();
    let reparsed: Vec<LabeledPoint> = parsed.into_iter().map(Into::into).collect();
    let lr = LogisticRegression { iterations: 3, ..Default::default() };
    let (m1, _) = lr.train(&cluster.parallelize(original, 4), 32).unwrap();
    let (m2, _) = lr.train(&cluster.parallelize(reparsed, 4), 32).unwrap();
    weights_close(&m1.weights, &m2.weights);
}
